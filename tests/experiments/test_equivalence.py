"""Hot-path optimizations must not move a single bit of any experiment.

Two families of guarantees:

* **Chunk invariance** — the RNG block size is a pure performance knob:
  ``rng_chunk=1`` (effectively scalar draws) and the default block size
  produce byte-identical run outcomes.
* **Golden fingerprints** — sha256 digests of full run outcomes captured
  on the *pre-optimization* tree (before batched RNG, slotted messages,
  cached counters, and heap compaction landed).  Matching them proves the
  optimized simulator replays the exact event history the original did.
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.experiments.runner import run_workload
from repro.grid.system import GridConfig
from repro.workloads.spec import FIGURE2_SCENARIOS


def fingerprint(out) -> str:
    """sha256 over every numeric output a run produces."""
    h = hashlib.sha256()
    h.update(np.ascontiguousarray(out.wait_times).tobytes())
    h.update(np.ascontiguousarray(out.match_costs).tobytes())
    h.update(json.dumps(out.node_exec_counts).encode())
    h.update(repr(out.sim_time).encode())
    h.update(repr(sorted(out.summary.items())).encode())
    return h.hexdigest()


def _workload():
    return FIGURE2_SCENARIOS["clustered-light"].scaled(0.04)


class TestChunkInvariance:
    def test_rng_chunk_is_perf_only(self):
        wl = _workload()
        outs = []
        for chunk in (1, 16, 1024):
            cfg = GridConfig(seed=7, spec=wl.spec, rng_chunk=chunk,
                             heartbeats_enabled=True, probe_mode="rpc",
                             dispatch_ack=True)
            outs.append(fingerprint(run_workload(wl, "rn-tree", seed=7,
                                                 grid_cfg=cfg)))
        assert outs[0] == outs[1] == outs[2]


class TestPreOptimizationGoldens:
    """Digests captured on this repo immediately before the hot-path
    overhaul (same host/python/numpy as CI).  If one of these moves, an
    'optimization' changed simulated behavior — that is a bug, not a
    baseline refresh.

    One deliberate exception on record: the resubmission-enabled golden
    was re-pinned when LOST became a protocol-terminal state.  Under the
    old semantics a client-abandoned (LOST) job's stale queued copy
    could still *start*, overwriting LOST with RUNNING; the job then
    never settled and the pinned run silently burned to ``max_time``
    (sim_time 1e6, 19 zombie jobs).  That was a correctness bug, not
    behavior worth preserving; the re-pinned digest drains at
    sim_time 1000 with every job settled, and the test now asserts
    ``finished`` so the zombie regime cannot quietly return.  The other
    two goldens never exercise LOST (no client resubmission) and did
    not move."""

    def test_bare_oracle_run(self):
        out = run_workload(_workload(), "rn-tree", seed=7)
        assert fingerprint(out) == (
            "3741fad47dbd298adca98a3a805dd151f18995c49c34e7371e53f620c17c07bb")

    def test_heartbeats_rpc_ack_run(self):
        wl = _workload()
        cfg = GridConfig(seed=7, spec=wl.spec, heartbeats_enabled=True,
                         probe_mode="rpc", dispatch_ack=True,
                         client_resubmit_enabled=True)
        out = run_workload(wl, "rn-tree", seed=7, grid_cfg=cfg)
        assert out.finished  # the zombie-LOST regime burned to max_time
        assert fingerprint(out) == (
            "c59ae088b9a99f0d6321b4195907be2c16dcb98ef5ff6f7c76f957798c4f30e6")

    def test_heartbeats_rpc_ack_run_with_tracing(self):
        """Causal tracing must not move the golden either: trace-context
        propagation rides the same messages and draws no randomness."""
        from repro.telemetry import Telemetry

        wl = _workload()
        cfg = GridConfig(seed=7, spec=wl.spec, heartbeats_enabled=True,
                         probe_mode="rpc", dispatch_ack=True,
                         client_resubmit_enabled=True)
        tel = Telemetry(sample_interval=10.0)
        out = run_workload(wl, "rn-tree", seed=7, grid_cfg=cfg,
                           telemetry=tel)
        assert fingerprint(out) == (
            "c59ae088b9a99f0d6321b4195907be2c16dcb98ef5ff6f7c76f957798c4f30e6")
        assert len(tel.bus) > 0

    def test_centralized_fair_share_run(self):
        wl = _workload()
        cfg = GridConfig(seed=3, spec=wl.spec, queue_discipline="fair-share",
                         heartbeats_enabled=True)
        out = run_workload(wl, "centralized", seed=3, grid_cfg=cfg)
        assert fingerprint(out) == (
            "1efe1eca8cc4cd5d77345698be1cb822a3d08ca307a8084d6fab6f7fc737aa8c")


class TestMitigationKnobsDefaultOff:
    """The three mitigation knobs (speculative re-execution, hot-owner
    replication, admission control) must be bit-identical no-ops when
    off: their code paths draw no RNG and send no messages unless the
    flag is set.  Running the pinned golden configs with every knob
    *explicitly* disabled must reproduce the exact digests — the A/B
    proof that adding the knobs changed nothing by default."""

    KNOBS_OFF = {"speculative": False, "replicate": False,
                 "admission": False}

    def test_bare_oracle_with_knobs_explicitly_off(self):
        out = run_workload(_workload(), "rn-tree", seed=7,
                           grid_overrides=dict(self.KNOBS_OFF))
        assert fingerprint(out) == (
            "3741fad47dbd298adca98a3a805dd151f18995c49c34e7371e53f620c17c07bb")

    def test_recovery_protocol_with_knobs_explicitly_off(self):
        wl = _workload()
        cfg = GridConfig(seed=7, spec=wl.spec, heartbeats_enabled=True,
                         probe_mode="rpc", dispatch_ack=True,
                         client_resubmit_enabled=True, **self.KNOBS_OFF)
        out = run_workload(wl, "rn-tree", seed=7, grid_cfg=cfg)
        assert fingerprint(out) == (
            "c59ae088b9a99f0d6321b4195907be2c16dcb98ef5ff6f7c76f957798c4f30e6")

    def test_fair_share_with_knobs_explicitly_off(self):
        wl = _workload()
        cfg = GridConfig(seed=3, spec=wl.spec, queue_discipline="fair-share",
                         heartbeats_enabled=True, **self.KNOBS_OFF)
        out = run_workload(wl, "centralized", seed=3, grid_cfg=cfg)
        assert fingerprint(out) == (
            "1efe1eca8cc4cd5d77345698be1cb822a3d08ca307a8084d6fab6f7fc737aa8c")


class TestColumnarKnobEquivalence:
    """The ``vectorized`` knob (columnar JobTable + vectorized phase-2
    ranking over NodeRegistry columns) defaults ON, so every committed
    golden already pins the columnar paths.  Turning it OFF must
    reproduce the exact same digests — the A/B proof that the columnar
    mirrors and the vectorized least-loaded rank are pure replumbing:
    same RNG draws, same tie-breaks, same event order, same bits."""

    def test_bare_oracle_scalar_matches_golden(self):
        out = run_workload(_workload(), "rn-tree", seed=7,
                           grid_overrides={"vectorized": False})
        assert fingerprint(out) == (
            "3741fad47dbd298adca98a3a805dd151f18995c49c34e7371e53f620c17c07bb")

    def test_recovery_protocol_scalar_matches_golden(self):
        wl = _workload()
        cfg = GridConfig(seed=7, spec=wl.spec, heartbeats_enabled=True,
                         probe_mode="rpc", dispatch_ack=True,
                         client_resubmit_enabled=True, vectorized=False)
        out = run_workload(wl, "rn-tree", seed=7, grid_cfg=cfg)
        assert fingerprint(out) == (
            "c59ae088b9a99f0d6321b4195907be2c16dcb98ef5ff6f7c76f957798c4f30e6")

    def test_fair_share_scalar_matches_golden(self):
        wl = _workload()
        cfg = GridConfig(seed=3, spec=wl.spec, queue_discipline="fair-share",
                         heartbeats_enabled=True, vectorized=False)
        out = run_workload(wl, "centralized", seed=3, grid_cfg=cfg)
        assert fingerprint(out) == (
            "1efe1eca8cc4cd5d77345698be1cb822a3d08ca307a8084d6fab6f7fc737aa8c")


class TestTimerWheelEquivalence:
    """The wheel is a data-structure swap, not a semantics change: wheel
    timers carry the same global sequence numbers as heap events, so the
    (time, seq) firing order — and with it every RNG draw — is identical
    with ``timer_wheel=False``."""

    def test_wheel_disabled_matches_committed_golden(self):
        """The heap-only path must still reproduce the pre-optimization
        golden — the strongest statement that the wheel changed nothing."""
        wl = _workload()
        cfg = GridConfig(seed=7, spec=wl.spec, timer_wheel=False,
                         heartbeats_enabled=True, probe_mode="rpc",
                         dispatch_ack=True, client_resubmit_enabled=True)
        out = run_workload(wl, "rn-tree", seed=7, grid_cfg=cfg)
        assert fingerprint(out) == (
            "c59ae088b9a99f0d6321b4195907be2c16dcb98ef5ff6f7c76f957798c4f30e6")

    def test_heartbeat_aggregation_golden_n150(self):
        """Batched per-node heartbeat sweeps under churn at N=150: the
        traced wheel run and the plain-heap run must agree bit-for-bit on
        every job's fate — including which jobs FAILED — and on the full
        metrics summary.  This is the lazy-aggregation golden: per-job
        ``last_heartbeat`` semantics survive the batch sweep exactly."""
        from repro.experiments.runner import build_population, drive
        from repro.grid.job import JobState
        from repro.grid.system import DesktopGrid
        from repro.match import make_matchmaker
        from repro.sim.failure import CrashRecoveryProcess
        from repro.telemetry import Telemetry
        from repro.workloads.spec import WorkloadConfig

        # Heavily constrained mixed workload + deep churn: some matches
        # exhaust their retries while the rare satisfying nodes are down,
        # so the run produces genuine FAILED jobs alongside COMPLETED.
        wl = WorkloadConfig(n_nodes=150, n_jobs=250, mean_interarrival=1.0,
                            mean_work=120.0, node_mode="mixed",
                            job_mode="mixed", constraint_prob=0.95)

        def states(use_wheel: bool) -> tuple[str, list[tuple[str, str]]]:
            nodes, stream = build_population(wl, seed=11)
            cfg = GridConfig(seed=11, spec=wl.spec, timer_wheel=use_wheel,
                             heartbeats_enabled=True,
                             client_resubmit_enabled=True,
                             client_max_attempts=2, match_retries=1,
                             match_retry_backoff=5.0)
            tel = Telemetry(sample_interval=25.0)
            grid = DesktopGrid(cfg, make_matchmaker("rn-tree"), nodes,
                               telemetry=tel)
            CrashRecoveryProcess(grid.sim, grid.streams["churn"],
                                 [n.node_id for n in grid.node_list],
                                 crash_fn=grid.crash_node,
                                 recover_fn=grid.recover_node,
                                 mean_uptime=100.0, mean_downtime=150.0)
            drive(grid, wl, stream, max_time=5000.0)
            fates = sorted((j.guid, j.state.name)
                           for j in grid.jobs.values())
            summary = repr(sorted(grid.metrics.summary().items()))
            assert len(tel.bus) > 0
            return summary, fates

        wheel_summary, wheel_fates = states(True)
        heap_summary, heap_fates = states(False)
        assert wheel_fates == heap_fates
        assert wheel_summary == heap_summary
        # The run must actually exercise both terminal paths, or the
        # equivalence claim is vacuous.
        outcomes = {state for _, state in wheel_fates}
        assert JobState.COMPLETED.name in outcomes
        assert JobState.FAILED.name in outcomes
