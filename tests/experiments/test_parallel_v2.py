"""Parallel engine v2: scheduling, sharding, batching, and the spool.

Everything here defends one invariant from a different angle: scheduling
decisions (LPT order, batching, completion order, merge path, sharding)
affect *when and where* cells run, never *what* the sweep returns — the
results, merged metrics, and merged span stream must be byte-identical
to the serial loop no matter how adversarial the schedule.
"""

import pickle
import time
from pathlib import Path

import pytest

from repro.experiments.parallel import (
    TimingCache,
    call,
    engine_stats,
    map_cells,
    render_engine_stats,
    reset_engine_stats,
    sharded,
)
from repro.experiments.runner import run_workload
from repro.telemetry.core import Telemetry
from repro.workloads.spec import FIGURE2_SCENARIOS

#: Tiny but non-trivial: ~30 nodes / 150 jobs per cell.
WL = FIGURE2_SCENARIOS["mixed-light"].scaled(0.03)


@pytest.fixture(autouse=True)
def _no_timing_cache(monkeypatch):
    """Placement must not depend on what earlier test runs left in the
    repo-level timing cache (and tests must not write to it)."""
    monkeypatch.setenv("REPRO_TIMING_CACHE", "off")


# -- module-level cell functions (must pickle) -----------------------------

def _square(x):
    return x * x


def _touch_or_boom(out_dir, tag, duration, explode=False):
    """Sleeps, then drops a sentinel file — unless told to explode."""
    if explode:
        raise RuntimeError("cell exploded")
    time.sleep(duration)
    (Path(out_dir) / f"{tag}.done").touch()
    return tag


def _traced_square(x, telemetry=None):
    telemetry.metrics.counter("squares").inc()
    telemetry.bus.span(float(x), "test.shard", x=x)
    return x * x


def _sum_parts(parts):
    return sum(parts)


def _reversed_order(futures):
    return list(reversed(futures))


def _rotated_order(futures):
    return futures[len(futures) // 2:] + futures[:len(futures) // 2]


# -- straggler / failure handling ------------------------------------------

class TestFailureCancelsPending:
    def test_failure_cancels_pending_and_propagates(self, tmp_path):
        """One failing cell must not leave the sweep grinding through the
        remaining queue: pending futures are cancelled, the pool shuts
        down eagerly, and the cell's exception reaches the caller."""
        n_slow = 20
        calls = [call(str(tmp_path), "boom", 0.0,
                      explode=True).with_cost(cost=100.0)]
        calls += [call(str(tmp_path), f"s{i:02d}",
                       0.15).with_cost(cost=1.0)
                  for i in range(n_slow)]
        with pytest.raises(RuntimeError, match="cell exploded"):
            map_cells(_touch_or_boom, calls, jobs=2, batch=False)
        # Cells already running when the failure surfaced finish (worker
        # processes cannot be interrupted mid-cell) — give them a beat.
        time.sleep(0.6)
        executed = len(list(tmp_path.glob("*.done")))
        assert executed < n_slow // 2, (
            f"{executed}/{n_slow} slow cells ran after the failure — "
            "pending futures were not cancelled")

    def test_serial_failure_propagates(self, tmp_path):
        with pytest.raises(RuntimeError, match="cell exploded"):
            map_cells(_touch_or_boom,
                      [call(str(tmp_path), "boom", 0.0, explode=True)],
                      jobs=1)


# -- forced completion order -----------------------------------------------

def _metrics_equal(a, b):
    """Metric-state equality, modulo histogram running totals (float
    sums whose grouping differs across workers — last-ulp only)."""
    assert set(a) == set(b)
    for name in a:
        if a[name][0] == "histogram":
            assert a[name][1:4] == b[name][1:4], name
            assert a[name][4] == pytest.approx(b[name][4]), name
            assert a[name][5:] == b[name][5:], name
        else:
            assert a[name] == b[name], name


class TestCompletionOrderIndependence:
    """The scheduler's as_completed collection is replaced with
    adversarial orders; results and telemetry must not move."""

    @pytest.fixture(scope="class")
    def serial(self):
        overrides = {"probe_mode": "rpc", "dispatch_ack": True}
        calls = [call(WL, mm, seed=s, grid_overrides=overrides)
                 for mm in ("rn-tree", "centralized") for s in (1, 2)]
        tel = Telemetry()
        out = map_cells(run_workload, calls, jobs=1, telemetry=tel)
        return calls, out, tel

    @pytest.mark.parametrize("order", [_reversed_order, _rotated_order])
    def test_forced_order_bit_identical_to_serial(self, serial, order):
        calls, serial_out, serial_tel = serial
        tel = Telemetry()
        out = map_cells(run_workload, calls, jobs=2, telemetry=tel,
                        _completion_order=order)
        for a, b in zip(serial_out, out):
            assert a.summary == b.summary
            assert a.events == b.events
        assert ([r.to_dict() for r in tel.bus.records]
                == [r.to_dict() for r in serial_tel.bus.records])
        _metrics_equal(serial_tel.metrics.state(), tel.metrics.state())

    @pytest.mark.parametrize("order", [_reversed_order, _rotated_order])
    def test_forced_order_with_sharding(self, order):
        """Sharded cells under an adversarial completion order still
        reduce to the serial cell results, and shard telemetry folds
        exactly as the serial shard loop would have recorded it."""
        cells = [sharded(_traced_square,
                         [call(x) for x in range(c * 3, c * 3 + 3)],
                         _sum_parts)
                 for c in range(4)]
        t_serial, t_fan = Telemetry(), Telemetry()
        a = map_cells(None, cells, jobs=1, telemetry=t_serial)
        b = map_cells(None, cells, jobs=3, telemetry=t_fan,
                      _completion_order=order)
        assert a == b
        assert a == [sum(x * x for x in range(c * 3, c * 3 + 3))
                     for c in range(4)]
        assert ([r.to_dict() for r in t_fan.bus.records]
                == [r.to_dict() for r in t_serial.bus.records])
        _metrics_equal(t_serial.metrics.state(), t_fan.metrics.state())


# -- merge-mode A/B ---------------------------------------------------------

class TestMergeModes:
    def test_pickled_merge_equivalent_to_spool(self):
        overrides = {"probe_mode": "rpc", "dispatch_ack": True}
        calls = [call(WL, "rn-tree", seed=s, grid_overrides=overrides)
                 for s in (1, 2, 3)]
        streams = {}
        for mode in ("spool", "pickled"):
            tel = Telemetry()
            map_cells(run_workload, calls, jobs=2, telemetry=tel,
                      merge_mode=mode)
            streams[mode] = ([r.to_dict() for r in tel.bus.records],
                             tel.metrics.state())
        assert streams["spool"][0] == streams["pickled"][0]
        _metrics_equal(streams["spool"][1], streams["pickled"][1])

    def test_unknown_merge_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown merge mode"):
            map_cells(_square, [call(i) for i in range(4)], jobs=2,
                      merge_mode="telepathy")

    def test_env_merge_mode_consulted(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARALLEL_MERGE", "pickled")
        reset_engine_stats()
        map_cells(_square, [call(i) for i in range(4)], jobs=2)
        assert engine_stats()[-1].merge_mode == "pickled"


# -- batching ---------------------------------------------------------------

class TestBatching:
    def test_tiny_cells_batch_and_preserve_order(self):
        reset_engine_stats()
        out = map_cells(_square, [call(i) for i in range(40)], jobs=2)
        assert out == [i * i for i in range(40)]
        stats = engine_stats()[-1]
        assert stats.n_cells == stats.n_units == 40
        assert stats.n_batches < 40, "40 uniform tiny cells did not batch"

    def test_batch_false_disables(self):
        reset_engine_stats()
        out = map_cells(_square, [call(i) for i in range(12)], jobs=2,
                        batch=False)
        assert out == [i * i for i in range(12)]
        assert engine_stats()[-1].n_batches == 12

    def test_heavy_cell_never_batched_with_others(self):
        reset_engine_stats()
        calls = [call(i).with_cost(cost=1000.0 if i == 0 else 1.0)
                 for i in range(20)]
        out = map_cells(_square, calls, jobs=2)
        assert out == [i * i for i in range(20)]
        stats = engine_stats()[-1]
        # The heavy unit exceeds the batch target on its own, so it is
        # sealed into a singleton batch immediately.
        assert stats.n_batches >= 2


# -- engine self-telemetry --------------------------------------------------

class TestEngineStats:
    def test_parallel_sweep_records_stats(self):
        reset_engine_stats()
        tel = Telemetry()
        calls = [call(WL, "centralized", seed=s) for s in (1, 2)]
        map_cells(run_workload, calls, jobs=2, telemetry=tel)
        stats = engine_stats()[-1]
        assert stats.jobs == 2
        assert stats.n_cells == 2 and stats.n_units == 2
        assert stats.wall_s > 0 and stats.busy_s > 0
        assert stats.payload_bytes > 0 and stats.merge_s > 0
        assert len(stats.units) == 2
        assert 0.0 < stats.utilization <= 1.0
        text = render_engine_stats()
        assert "parallel engine: 2 cells" in text
        assert "bytes serialized" in text

    def test_serial_sweep_records_nothing(self):
        reset_engine_stats()
        map_cells(_square, [call(i) for i in range(4)], jobs=1)
        assert engine_stats() == []
        assert "no parallel sweeps" in render_engine_stats()


# -- spool round trip -------------------------------------------------------

class TestSpool:
    def _traced_worker(self):
        tel = Telemetry()
        run_workload(WL, "rn-tree", seed=1, telemetry=tel,
                     grid_overrides={"probe_mode": "rpc"})
        return tel

    def test_roundtrip_matches_state_merge(self, tmp_path):
        from repro.telemetry.spool import fold_spool, write_spool

        worker = self._traced_worker()
        path = tmp_path / "w.spool"
        nbytes = write_spool(path, worker)
        assert nbytes == path.stat().st_size > 0

        via_spool, via_state = Telemetry(), Telemetry()
        n = fold_spool(path, via_spool)
        via_state.metrics.merge(worker.metrics.state())
        via_state.bus.merge(worker.bus.state())
        assert n == len(worker.bus.records)
        assert ([r.to_dict() for r in via_spool.bus.records]
                == [r.to_dict() for r in via_state.bus.records])
        _metrics_equal(via_state.metrics.state(), via_spool.metrics.state())

    def test_fold_offsets_span_ids_past_existing(self, tmp_path):
        from repro.telemetry.spool import fold_spool, write_spool

        worker = self._traced_worker()
        path = tmp_path / "w.spool"
        write_spool(path, worker)
        parent = Telemetry()
        parent.bus.span(0.0, "parent.pre", note="existing span")
        watermark = parent.bus.span_watermark
        assert watermark > 0
        fold_spool(path, parent)
        folded = [r for r in parent.bus.records
                  if r.span_id is not None and r.category != "parent.pre"]
        assert folded and all(r.span_id >= watermark for r in folded)

    def test_empty_telemetry_roundtrip(self, tmp_path):
        from repro.telemetry.spool import fold_spool, write_spool

        path = tmp_path / "empty.spool"
        write_spool(path, Telemetry())
        parent = Telemetry()
        assert fold_spool(path, parent) == 0
        assert len(parent.bus.records) == 0

    def test_truncated_spool_rejected(self, tmp_path):
        from repro.telemetry.spool import fold_spool, write_spool

        worker = self._traced_worker()
        path = tmp_path / "w.spool"
        write_spool(path, worker)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) - 7])
        with pytest.raises(ValueError, match="truncated"):
            fold_spool(path, Telemetry())


# -- timing cache -----------------------------------------------------------

class TestTimingCache:
    def test_observe_estimate_save_roundtrip(self, tmp_path):
        path = tmp_path / "timings.json"
        cache = TimingCache(path)
        assert cache.estimate("k") is None
        cache.observe("k", 2.0)
        cache.observe("k", 4.0)
        assert cache.estimate("k") == pytest.approx(3.0)
        cache.save()
        assert TimingCache(path).estimate("k") == pytest.approx(3.0)

    def test_corrupt_file_degrades_to_empty(self, tmp_path):
        path = tmp_path / "timings.json"
        path.write_text("{definitely not json")
        cache = TimingCache(path)
        assert cache.estimate("k") is None
        cache.observe("k", 1.0)
        cache.save()  # must overwrite the corrupt file, not crash
        assert TimingCache(path).estimate("k") == pytest.approx(1.0)

    def test_mean_is_capped_not_fossilized(self, tmp_path):
        cache = TimingCache(tmp_path / "t.json")
        for _ in range(500):
            cache.observe("k", 1.0)
        cache.observe("k", 65.0)
        # With an uncapped mean the step would move the estimate ~0.13;
        # the cap keeps recent observations at >= 1/CAP weight.
        assert cache.estimate("k") == pytest.approx(2.0)

    def test_env_off_disables_persistence(self, monkeypatch):
        monkeypatch.setenv("REPRO_TIMING_CACHE", "off")
        assert TimingCache.default().path is None

    def test_env_path_override(self, monkeypatch, tmp_path):
        target = tmp_path / "custom.json"
        monkeypatch.setenv("REPRO_TIMING_CACHE", str(target))
        cache = TimingCache.default()
        assert cache.path == target
        cache.observe("k", 1.5)
        cache.save()
        assert target.is_file()

    def test_parallel_sweep_persists_timings(self, monkeypatch, tmp_path):
        target = tmp_path / "sweep.json"
        monkeypatch.setenv("REPRO_TIMING_CACHE", str(target))
        map_cells(_square, [call(i).with_cost(kind="sq") for i in range(4)],
                  jobs=2, batch=False)
        assert TimingCache(target).estimate("sq") is not None


# -- sharding: the dht_scaling driver --------------------------------------

class TestDhtSharding:
    def test_sharded_matches_unsharded_and_parallel(self):
        from repro.experiments.dht_scaling import run_dht_scaling

        kw = dict(sizes=(64, 128), lookups=30)
        unsharded = run_dht_scaling(jobs=1, shard_cells=False, **kw)
        sharded_serial = run_dht_scaling(jobs=1, shard_cells=True, **kw)
        sharded_fanned = run_dht_scaling(jobs=3, shard_cells=True, **kw)
        assert unsharded.mean_hops == sharded_serial.mean_hops
        assert unsharded.mean_hops == sharded_fanned.mean_hops

    def test_shards_fan_out_as_units(self):
        from repro.experiments.dht_scaling import run_dht_scaling

        reset_engine_stats()
        run_dht_scaling(sizes=(64, 128), lookups=30, jobs=2)
        stats = engine_stats()[-1]
        assert stats.n_cells == 2
        assert stats.n_units == 8  # four substrate shards per size


# -- the v1 tuple form stays accepted ---------------------------------------

def test_legacy_tuple_calls_still_work():
    out = map_cells(_square, [((i,), {}) for i in range(6)], jobs=2)
    assert out == [i * i for i in range(6)]


def test_call_objects_pickle():
    c = call(1, two=2).with_cost(cost=3.0, kind="k")
    assert pickle.loads(pickle.dumps(c)) == c
