"""Experiment drivers at miniature scale: structure and qualitative shapes.

The full-size shape checks run in the benchmark harness; here we assert
the drivers produce complete, well-formed results and the robust subset
of the qualitative claims at tiny scale (fast enough for CI).
"""

import math

import pytest

from repro.experiments import (
    run_churn_experiment,
    run_dht_scaling,
    run_fairness_experiment,
    run_figure2,
    run_hops_experiment,
    run_k_sweep_ablation,
    run_matchpipe_ablation,
    run_pushing_experiment,
    run_ttl_ablation,
    run_virtual_dimension_ablation,
    run_workload,
)
from repro.experiments.churn import ChurnConfig
from repro.experiments.matchpipe import MatchPipeConfig
from repro.experiments.figure2 import FIGURE2_MATCHMAKERS
from repro.workloads.spec import FIGURE2_SCENARIOS


SCALE = 0.06  # 60 nodes / 300 jobs: seconds per run


class TestRunner:
    def test_run_workload_summary_complete(self):
        wl = FIGURE2_SCENARIOS["clustered-light"].scaled(SCALE)
        outcome = run_workload(wl, "centralized", seed=1)
        assert outcome.finished
        assert outcome.summary["completed"] == wl.n_jobs
        assert outcome.wait_times.size == wl.n_jobs
        assert not math.isnan(outcome.wait_mean)

    def test_same_seed_reproduces(self):
        wl = FIGURE2_SCENARIOS["mixed-light"].scaled(SCALE)
        a = run_workload(wl, "rn-tree", seed=2)
        b = run_workload(wl, "rn-tree", seed=2)
        assert a.summary == b.summary

    def test_workload_identical_across_matchmakers(self):
        # The A/B discipline: same seed => same population and stream.
        from repro.experiments.runner import build_population

        wl = FIGURE2_SCENARIOS["mixed-heavy"].scaled(SCALE)
        nodes_a, jobs_a = build_population(wl, seed=3)
        nodes_b, jobs_b = build_population(wl, seed=3)
        assert nodes_a == nodes_b
        assert jobs_a == jobs_b


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure2(scale=SCALE, seeds=(1,))

    def test_all_cells_present(self, result):
        for scenario in FIGURE2_SCENARIOS:
            for mm in FIGURE2_MATCHMAKERS:
                cell = result.values[scenario][mm]
                assert cell["completed"] > 0
                assert not math.isnan(cell["wait_mean"])

    def test_report_renders_four_panels(self, result):
        report = result.report()
        for panel in ("2(a)", "2(b)", "2(c)", "2(d)"):
            assert panel in report

    def test_centralized_is_the_target(self, result):
        v = result.values
        for scenario in FIGURE2_SCENARIOS:
            assert v[scenario]["centralized"]["wait_mean"] < \
                v[scenario]["can"]["wait_mean"]
            assert v[scenario]["centralized"]["wait_mean"] < \
                v[scenario]["rn-tree"]["wait_mean"]

    def test_can_pathology_emerges_with_scale(self):
        # The mixed/lightly-constrained CAN collapse is a *locality*
        # phenomenon: it needs enough nodes that neighbor sets cover only
        # a small patch of the space.  At 1/10 scale it is unmistakable.
        from repro.experiments.runner import run_workload

        wl = FIGURE2_SCENARIOS["mixed-light"].scaled(0.1)
        can = run_workload(wl, "can", seed=1).summary
        rnt = run_workload(wl, "rn-tree", seed=1).summary
        cent = run_workload(wl, "centralized", seed=1).summary
        assert can["wait_mean"] > 2.0 * rnt["wait_mean"]
        assert can["wait_mean"] > 5.0 * cent["wait_mean"]


class TestHops:
    def test_costs_small_and_reported(self):
        result = run_hops_experiment(scale=SCALE)
        assert len(result.rows) == 8  # 4 scenarios x 2 matchmakers
        checks = result.shape_checks()
        assert all(checks.values()), checks
        assert "Matchmaking cost" in result.report()


class TestPushing:
    def test_push_improves_pathology(self):
        result = run_pushing_experiment(scale=SCALE, seeds=(1,))
        assert result.by_mm["can-push"]["wait_mean"] < \
            result.by_mm["can"]["wait_mean"]
        assert result.by_mm["can-push"]["pushes_mean"] > 0


class TestChurn:
    def test_p2p_beats_client_server(self):
        cc = ChurnConfig(n_nodes=50, n_jobs=120, max_time=20000.0)
        result = run_churn_experiment(cc, seeds=(1,),
                                      systems=("p2p/rn-tree", "client-server"))
        p2p = result.by_system["p2p/rn-tree"]
        srv = result.by_system["client-server"]
        assert p2p["completed_frac"] > 0.9
        assert p2p["recoveries_run_node"] + p2p["recoveries_owner"] > 0
        assert srv["resubmissions"] >= p2p["resubmissions"]
        assert "Robustness under churn" in result.report()


class TestMatchPipe:
    def test_policy_and_mode_sweep(self):
        cc = MatchPipeConfig(n_nodes=50, n_jobs=100, max_time=20000.0)
        result = run_matchpipe_ablation(cc, seeds=(1,))
        assert len(result.by_cell) == 6  # 2 probe modes x 3 policies
        for cell in result.by_cell.values():
            assert cell["completed_frac"] > 0.9
        # Probing beats blind placement in both probe modes.
        for mode in ("oracle", "rpc"):
            assert result.by_cell[(mode, "least-loaded")]["wait_mean"] \
                < result.by_cell[(mode, "random")]["wait_mean"]
        # random never probes; least-loaded probes every candidate.
        assert result.by_cell[("rpc", "random")]["probes_mean"] == 0.0
        assert result.by_cell[("rpc", "least-loaded")]["probes_mean"] > 0
        assert "Matchmaking pipeline ablation" in result.report()


class TestDHTScaling:
    def test_sublinear_growth(self):
        result = run_dht_scaling(sizes=(32, 64, 128), lookups=60)
        checks = result.shape_checks()
        assert all(checks.values()), checks
        assert "chord" in result.report()

    def test_budget_guard_records_not_fails(self):
        # An impossible budget flags every cell OVER — but the run still
        # returns full data (recording, not failing, is the contract).
        result = run_dht_scaling(sizes=(32, 64), lookups=20,
                                 cell_budget_s=1e-9)
        assert result.over_budget == [True, True]
        assert all(w > 0 for w in result.wall_s)
        assert len(result.mean_hops["chord"]) == 2
        assert "OVER" in result.report()

    def test_within_budget_reports_ok(self):
        result = run_dht_scaling(sizes=(32,), lookups=20)
        assert result.over_budget == [False]
        assert "OVER" not in result.report()


class TestAblations:
    def test_virtual_dimension(self):
        result = run_virtual_dimension_ablation(scale=SCALE)
        assert result.clustered_construction_fails
        checks = result.shape_checks()
        assert checks["vdim_improves_identical_jobs"], result.rows

    def test_k_sweep_monotone_cost(self):
        result = run_k_sweep_ablation(ks=(1, 4), scale=SCALE)
        checks = result.shape_checks()
        assert checks["larger_k_costlier"]
        assert checks["larger_k_better_balance"]

    def test_ttl_misses(self):
        result = run_ttl_ablation(scale=SCALE, ttl=4)
        checks = result.shape_checks()
        assert checks["structured_finds_all"]
        assert checks["ttl_misses_feasible_jobs"]


class TestFairness:
    def test_fair_share_helps_light_user(self):
        result = run_fairness_experiment(n_nodes=30, heavy_jobs=150,
                                         light_jobs=15)
        fifo = result.by_discipline["fifo"]
        fair = result.by_discipline["fair-share"]
        assert fair["light_slowdown"] < fifo["light_slowdown"]


class TestScaling:
    def test_cost_sublinear_and_wait_flat(self):
        from repro.experiments import run_scaling_experiment

        result = run_scaling_experiment(sizes=(48, 96), seed=2)
        checks = result.shape_checks()
        assert all(checks.values()), checks
        assert "scalability" in result.report()


class TestScenarios:
    SMALL = None  # built lazily; ScenariosConfig import kept local

    @classmethod
    def config(cls):
        from repro.experiments.scenarios import ScenariosConfig
        if cls.SMALL is None:
            cls.SMALL = ScenariosConfig(n_nodes=32, n_jobs=80,
                                        max_time=30_000.0)
        return cls.SMALL

    def test_sweep_cells_complete_and_reported(self):
        from repro.experiments import run_scenarios_experiment

        result = run_scenarios_experiment(
            config=self.config(),
            scenarios=("baseline", "flash_crowd", "double_failure"))
        assert set(result.by_cell) == {
            (s, m) for s in result.scenarios for m in result.mitigations}
        assert all(c["finished"] == 1.0 for c in result.by_cell.values())
        report = result.report()
        for name in result.scenarios:
            assert name in report
        checks = result.shape_checks()
        assert checks["all_cells_finished"]
        assert checks["baseline_completes"]

    def test_serial_parallel_bit_identical(self):
        from repro.experiments import run_scenarios_experiment

        kwargs = dict(config=self.config(),
                      scenarios=("baseline", "correlated_failure"))
        serial = run_scenarios_experiment(jobs=1, **kwargs)
        par = run_scenarios_experiment(jobs=2, **kwargs)
        assert serial.fingerprints == par.fingerprints
        assert serial.fingerprints  # non-vacuous

    def test_unknown_mitigation_rejected(self):
        from repro.experiments import run_scenarios_experiment

        with pytest.raises(KeyError, match="unknown mitigation"):
            run_scenarios_experiment(config=self.config(),
                                     scenarios=("baseline",),
                                     mitigations=("turbo",))

    def test_cell_is_deterministic(self):
        from repro.experiments.scenarios import run_scenario_cell

        a = run_scenario_cell(self.config(), "double_failure", "mitigated", 5)
        b = run_scenario_cell(self.config(), "double_failure", "mitigated", 5)
        assert a == b
