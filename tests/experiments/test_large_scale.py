"""Large-scale experiment: cells run, budgets record instead of failing."""

from repro.experiments.large_scale import (
    LargeScaleCell,
    run_churn_cell,
    run_large_scale,
    run_workload_cell,
)


class TestWorkloadCell:
    def test_small_cell_completes(self):
        cell = run_workload_cell(60, seed=3)
        assert cell.name == "workload"
        assert cell.n == 60
        assert cell.wall_s > 0
        assert cell.metrics["jobs"] == 120.0
        assert cell.metrics["finished"] == 1.0
        assert cell.metrics["events_per_s"] > 0

    def test_over_budget_is_recorded_not_raised(self):
        cell = run_workload_cell(60, seed=3, budget_s=1e-9)
        assert cell.over_budget


class TestChurnCell:
    def test_small_ring_survives_churn(self):
        cell = run_churn_cell(400, steps=10, lookups=40, seed=3)
        assert cell.name == "dht-churn"
        assert cell.metrics["churn_steps"] == 10.0
        # Lookups keep resolving through crash/rejoin cycles.
        assert cell.metrics["lookups"] == 40.0
        assert cell.metrics["mean_hops"] > 0
        assert not cell.over_budget


class TestSuite:
    def test_report_flags_over_budget(self):
        result = run_large_scale(workload_sizes=(50,), churn_n=300,
                                 churn_steps=5, seed=3, budget_s=1e-9)
        assert [c.name for c in result.cells] == ["workload", "dht-churn"]
        assert result.any_over_budget
        assert "OVER" in result.report()

    def test_report_ok_within_budget(self):
        result = run_large_scale(workload_sizes=(50,), churn_n=300,
                                 churn_steps=5, seed=3)
        assert not result.any_over_budget
        assert "OVER" not in result.report()
        assert all(isinstance(c, LargeScaleCell) for c in result.cells)
