"""The discrete-event kernel: ordering, cancellation, run bounds."""

import pytest


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        log = []
        sim.schedule(3.0, log.append, "c")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(2.0, log.append, "b")
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_fifo_order(self, sim):
        log = []
        for tag in ("first", "second", "third"):
            sim.schedule(1.0, log.append, tag)
        sim.run()
        assert log == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_scheduling_in_the_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)

    def test_nan_time_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule_at(float("nan"), lambda: None)

    def test_events_scheduled_from_callbacks(self, sim):
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert log == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        log = []
        handle = sim.schedule(1.0, log.append, "x")
        handle.cancel()
        sim.run()
        assert log == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.run() == 0

    def test_cancel_releases_references(self, sim):
        payload = object()
        handle = sim.schedule(1.0, lambda x: None, payload)
        handle.cancel()
        assert handle.args == ()
        assert handle.fn is None


class TestRunBounds:
    def test_run_until_stops_before_later_events(self, sim):
        log = []
        sim.schedule(1.0, log.append, "early")
        sim.schedule(5.0, log.append, "late")
        sim.run(until=2.0)
        assert log == ["early"]
        assert sim.now == 2.0  # clock advanced to the bound
        sim.run()
        assert log == ["early", "late"]

    def test_max_events(self, sim):
        log = []
        for i in range(5):
            sim.schedule(float(i + 1), log.append, i)
        assert sim.run(max_events=2) == 2
        assert log == [0, 1]

    def test_step(self, sim):
        sim.schedule(1.0, lambda: None)
        assert sim.step() is True
        assert sim.step() is False

    def test_run_is_not_reentrant(self, sim):
        def bad():
            sim.run()

        sim.schedule(1.0, bad)
        with pytest.raises(RuntimeError):
            sim.run()

    def test_peek_time_skips_cancelled(self, sim):
        h = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        h.cancel()
        assert sim.peek_time() == 2.0

    def test_counters(self, sim):
        for i in range(3):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_scheduled == 3
        assert sim.events_processed == 3


class TestHeapHygiene:
    """Tombstone accounting, compaction, and mid-run peeking."""

    def test_live_pending_counts_only_uncancelled(self, sim):
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert sim.live_pending == 10
        for h in handles[:4]:
            h.cancel()
        assert sim.live_pending == 6
        assert len(sim._heap) == 10  # tombstones still buried in the heap

    def test_compaction_evicts_tombstones(self, sim):
        from repro.sim.kernel import COMPACT_MIN_TOMBSTONES

        n = COMPACT_MIN_TOMBSTONES * 3
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(n)]
        keep = handles[: n // 3]
        for h in handles[n // 3:]:  # cancel 2/3: majority-tombstone trigger
            h.cancel()
        assert sim.compactions >= 1
        # The heap shed tombstones (it no longer holds all n entries) and
        # the live count is exact despite any re-accumulated tombstones.
        assert len(sim._heap) < n
        assert sim.live_pending == len(keep)
        assert len(sim._heap) - len(keep) == sim._tombstones

    def test_order_preserved_across_compaction(self, sim):
        from repro.sim.kernel import COMPACT_MIN_TOMBSTONES

        n = COMPACT_MIN_TOMBSTONES * 3 + 7
        log = []
        handles = []
        # Interleave ties (FIFO-sensitive) with distinct times.
        for i in range(n):
            t = float(1 + i // 3)
            handles.append(sim.schedule(t, log.append, i))
        cancelled = {i for i in range(n) if i % 3 != 0}  # 2/3: past trigger
        for i in sorted(cancelled):
            handles[i].cancel()
        assert sim.compactions >= 1
        sim.run()
        assert log == [i for i in range(n) if i not in cancelled]

    def test_cancel_after_compaction_counts_once(self, sim):
        """Cancelling a handle the compactor already evicted must not
        double-count telemetry: ``events_cancelled`` and the tombstone
        ledger see each event's live->cancelled transition exactly once."""
        from repro.sim.kernel import COMPACT_MIN_TOMBSTONES

        n = COMPACT_MIN_TOMBSTONES * 3
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(n)]
        victims = handles[n // 3:]
        for h in victims:
            h.cancel()
        assert sim.compactions >= 1
        assert sim.events_cancelled == len(victims)
        for h in victims:  # compacted away — cancel again is a no-op
            h.cancel()
        assert sim.events_cancelled == len(victims)
        live = n - len(victims)
        assert sim.live_pending == live
        assert sim._tombstones == len(sim._heap) - live

    def test_few_tombstones_do_not_compact(self, sim):
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(8)]
        for h in handles[:6]:
            h.cancel()
        assert sim.compactions == 0  # below the minimum-tombstone floor

    def test_peek_time_mid_run_does_not_pop(self, sim):
        seen = []

        def probe():
            # Cancel a pending event, then peek while _running: the peek
            # must not mutate the heap out from under the run loop.
            victims[0].cancel()
            seen.append(sim.peek_time())

        victims = [sim.schedule(1.5, lambda: None)]
        sim.schedule(1.0, probe)
        sim.schedule(2.0, seen.append, "fired")
        sim.run()
        assert seen == [2.0, "fired"]

    def test_fired_events_are_not_tombstones(self, sim):
        for i in range(100):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert sim._tombstones == 0
        assert sim.compactions == 0

    def test_cancel_after_fire_is_harmless(self, sim):
        h = sim.schedule(1.0, lambda: None)
        sim.run()
        h.cancel()  # already cleared inline by the run loop
        assert sim._tombstones == 0
