"""Message delivery, latency, and dead-endpoint semantics."""

import numpy as np
import pytest

from repro.sim.network import LatencyModel, Network
from repro.sim.kernel import Simulator


class FakeEndpoint:
    def __init__(self, node_id, alive=True):
        self.node_id = node_id
        self.alive = alive
        self.inbox = []

    def handle_message(self, msg):
        self.inbox.append(msg)


@pytest.fixture
def net():
    sim = Simulator()
    rng = np.random.default_rng(0)
    return Network(sim, rng, LatencyModel(mean=0.01, jitter=0.0))


class TestDelivery:
    def test_basic_delivery(self, net):
        a, b = FakeEndpoint(1), FakeEndpoint(2)
        net.register(a)
        net.register(b)
        net.send("ping", 1, 2, payload="hello")
        net.sim.run()
        assert len(b.inbox) == 1
        msg = b.inbox[0]
        assert msg.kind == "ping" and msg.payload == "hello" and msg.src == 1

    def test_delivery_takes_latency(self, net):
        a, b = FakeEndpoint(1), FakeEndpoint(2)
        net.register(a)
        net.register(b)
        net.send("ping", 1, 2)
        net.sim.run()
        assert net.sim.now == pytest.approx(0.01)

    def test_send_to_dead_destination_dropped(self, net):
        a, b = FakeEndpoint(1), FakeEndpoint(2, alive=False)
        net.register(a)
        net.register(b)
        net.send("ping", 1, 2)
        net.sim.run()
        assert b.inbox == []
        assert net.stats.dropped_dead_dst == 1

    def test_destination_dies_in_flight(self, net):
        a, b = FakeEndpoint(1), FakeEndpoint(2)
        net.register(a)
        net.register(b)
        net.send("ping", 1, 2)
        b.alive = False  # dies before delivery event fires
        net.sim.run()
        assert b.inbox == []

    def test_send_from_dead_source_refused(self, net):
        a, b = FakeEndpoint(1, alive=False), FakeEndpoint(2)
        net.register(a)
        net.register(b)
        assert net.send("ping", 1, 2) is None
        assert net.stats.dropped_dead_src == 1

    def test_source_dies_after_send_still_delivers(self, net):
        a, b = FakeEndpoint(1), FakeEndpoint(2)
        net.register(a)
        net.register(b)
        net.send("ping", 1, 2)
        a.alive = False  # already on the wire
        net.sim.run()
        assert len(b.inbox) == 1

    def test_unknown_destination_dropped(self, net):
        a = FakeEndpoint(1)
        net.register(a)
        net.send("ping", 1, 99)
        net.sim.run()
        assert net.stats.dropped_dead_dst == 1

    def test_on_delivered_callback(self, net):
        a, b = FakeEndpoint(1), FakeEndpoint(2)
        net.register(a)
        net.register(b)
        seen = []
        net.send("ping", 1, 2, on_delivered=seen.append)
        net.sim.run()
        assert len(seen) == 1

    def test_duplicate_registration_rejected(self, net):
        net.register(FakeEndpoint(1))
        with pytest.raises(ValueError):
            net.register(FakeEndpoint(1))

    def test_stats_by_kind(self, net):
        a, b = FakeEndpoint(1), FakeEndpoint(2)
        net.register(a)
        net.register(b)
        net.send("ping", 1, 2)
        net.send("ping", 2, 1)
        net.send("pong", 1, 2)
        net.sim.run()
        assert net.stats.by_kind == {"ping": 2, "pong": 1}
        assert net.stats.delivered == 3


class TestLatencyModel:
    def test_deterministic_when_no_jitter(self):
        m = LatencyModel(mean=0.05, jitter=0.0)
        rng = np.random.default_rng(0)
        assert m.sample(rng) == 0.05

    def test_jitter_mean_approximately_right(self):
        m = LatencyModel(mean=0.05, jitter=0.3)
        rng = np.random.default_rng(0)
        samples = [m.sample(rng) for _ in range(5000)]
        assert np.mean(samples) == pytest.approx(0.05, rel=0.05)

    def test_minimum_enforced(self):
        m = LatencyModel(mean=0.003, jitter=0.9, minimum=0.002)
        rng = np.random.default_rng(0)
        assert all(m.sample(rng) >= 0.002 for _ in range(1000))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LatencyModel(mean=0.0)
        with pytest.raises(ValueError):
            LatencyModel(jitter=-0.1)
