"""Failure injection: scripted crashes and churn processes."""

import numpy as np
import pytest

from repro.sim.failure import CrashRecoveryProcess, FailureInjector
from repro.sim.kernel import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestFailureInjector:
    def test_scripted_crash_fires_at_time(self, sim):
        crashed = []
        inj = FailureInjector(sim, crashed.append)
        inj.crash_at(5.0, 42)
        sim.run(until=4.9)
        assert crashed == []
        sim.run(until=5.1)
        assert crashed == [42]
        assert inj.crashes_injected == 1

    def test_crash_many(self, sim):
        crashed = []
        inj = FailureInjector(sim, crashed.append)
        inj.crash_many([(1.0, 1), (2.0, 2), (3.0, 3)])
        sim.run()
        assert crashed == [1, 2, 3]

    def test_recovery_requires_recover_fn(self, sim):
        inj = FailureInjector(sim, lambda n: None)
        with pytest.raises(ValueError):
            inj.recover_at(1.0, 5)

    def test_crash_then_recover(self, sim):
        events = []
        inj = FailureInjector(sim, lambda n: events.append(("crash", n)),
                              lambda n: events.append(("up", n)))
        inj.crash_at(1.0, 7)
        inj.recover_at(2.0, 7)
        sim.run()
        assert events == [("crash", 7), ("up", 7)]


class TestCrashRecoveryProcess:
    def test_alternates_crash_and_recover(self, sim):
        events = []
        CrashRecoveryProcess(
            sim, np.random.default_rng(0), [1],
            crash_fn=lambda n: events.append("down"),
            recover_fn=lambda n: events.append("up"),
            mean_uptime=10.0, mean_downtime=5.0,
        )
        sim.run(until=500.0)
        assert len(events) >= 4
        # Strict alternation starting with a crash.
        for i, e in enumerate(events):
            assert e == ("down" if i % 2 == 0 else "up")

    def test_all_nodes_get_churned(self, sim):
        seen = set()
        CrashRecoveryProcess(
            sim, np.random.default_rng(1), [1, 2, 3, 4],
            crash_fn=seen.add, recover_fn=lambda n: None,
            mean_uptime=10.0, mean_downtime=10.0,
        )
        sim.run(until=200.0)
        assert seen == {1, 2, 3, 4}

    def test_stop_halts_new_events(self, sim):
        events = []
        proc = CrashRecoveryProcess(
            sim, np.random.default_rng(0), [1],
            crash_fn=lambda n: events.append("down"),
            recover_fn=lambda n: events.append("up"),
            mean_uptime=1.0, mean_downtime=1.0,
        )
        sim.run(until=10.0)
        count = len(events)
        proc.stop()
        sim.run(until=100.0)
        assert len(events) == count

    def test_duty_cycle_roughly_matches(self, sim):
        # With mean up 30 / down 10, the node should be down ~25% of time.
        state = {"down_at": None, "down_total": 0.0}

        def crash(n):
            state["down_at"] = sim.now

        def recover(n):
            state["down_total"] += sim.now - state["down_at"]
            state["down_at"] = None

        CrashRecoveryProcess(sim, np.random.default_rng(3), [1],
                             crash_fn=crash, recover_fn=recover,
                             mean_uptime=30.0, mean_downtime=10.0)
        horizon = 100000.0
        sim.run(until=horizon)
        frac = state["down_total"] / horizon
        assert 0.15 < frac < 0.35

    def test_rejects_bad_means(self, sim):
        with pytest.raises(ValueError):
            CrashRecoveryProcess(sim, np.random.default_rng(0), [1],
                                 crash_fn=lambda n: None,
                                 recover_fn=lambda n: None,
                                 mean_uptime=0.0, mean_downtime=1.0)
