"""TraceRecorder filtering and no-op behaviour."""

from repro.sim.trace import NULL_TRACE, TraceRecorder


class TestTraceRecorder:
    def test_records_in_order(self):
        tr = TraceRecorder()
        tr.record(1.0, "a", x=1)
        tr.record(2.0, "b", y=2)
        assert len(tr) == 2
        assert tr.records[0].time == 1.0
        assert tr.records[1].detail == {"y": 2}

    def test_category_filter(self):
        tr = TraceRecorder(categories=["match"])
        tr.record(1.0, "match", job="j1")
        tr.record(2.0, "heartbeat", job="j1")
        assert len(tr) == 1
        assert tr.records[0].category == "match"

    def test_by_category(self):
        tr = TraceRecorder()
        tr.record(1.0, "a")
        tr.record(2.0, "b")
        tr.record(3.0, "a")
        assert [r.time for r in tr.by_category("a")] == [1.0, 3.0]

    def test_disabled_recorder_is_noop(self):
        tr = TraceRecorder(enabled=False)
        tr.record(1.0, "a")
        assert len(tr) == 0

    def test_null_trace_shared_noop(self):
        NULL_TRACE.record(1.0, "anything")
        assert len(NULL_TRACE) == 0

    def test_clear(self):
        tr = TraceRecorder()
        tr.record(1.0, "a")
        tr.clear()
        assert len(tr) == 0
