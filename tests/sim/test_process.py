"""PeriodicTask: cadence, jitter, stop semantics."""

import numpy as np
import pytest

from repro.sim.kernel import Simulator
from repro.sim.process import PeriodicTask


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestPeriodicTask:
    def test_fires_at_fixed_cadence(self, sim):
        times = []
        PeriodicTask(sim, 2.0, lambda: times.append(sim.now), stagger=False)
        sim.run(until=7.0)
        assert times == [2.0, 4.0, 6.0]

    def test_stagger_offsets_first_firing(self, sim, rng):
        times = []
        PeriodicTask(sim, 2.0, lambda: times.append(sim.now),
                     rng=rng, stagger=True)
        sim.run(until=1.99)
        assert len(times) == 1  # first firing within one interval
        assert 0.0 <= times[0] < 2.0

    def test_stop_halts_firing(self, sim):
        count = [0]
        task = PeriodicTask(sim, 1.0, lambda: count.__setitem__(0, count[0] + 1),
                            stagger=False)
        sim.run(until=2.5)
        task.stop()
        sim.run(until=10.0)
        assert count[0] == 2
        assert task.firings == 2

    def test_stop_from_within_callback(self, sim):
        task_box = {}

        def fn():
            task_box["t"].stop()

        task_box["t"] = PeriodicTask(sim, 1.0, fn, stagger=False)
        sim.run(until=10.0)
        assert task_box["t"].firings == 1

    def test_restart_after_stop(self, sim):
        count = [0]
        task = PeriodicTask(sim, 1.0, lambda: count.__setitem__(0, count[0] + 1),
                            stagger=False)
        sim.run(until=1.5)
        task.stop()
        task.start()
        sim.run(until=3.0)
        assert count[0] == 2  # at t=1.0 then t=2.5

    def test_jitter_varies_cadence(self, sim, rng):
        times = []
        PeriodicTask(sim, 1.0, lambda: times.append(sim.now),
                     rng=rng, jitter=0.3, stagger=False)
        sim.run(until=20.0)
        gaps = np.diff(times)
        assert all(0.7 - 1e-9 <= g <= 1.3 + 1e-9 for g in gaps)
        assert np.std(gaps) > 0.0

    def test_start_is_idempotent(self, sim):
        count = [0]
        task = PeriodicTask(sim, 1.0, lambda: count.__setitem__(0, count[0] + 1),
                            stagger=False)
        task.start()  # second start must not double-schedule
        sim.run(until=1.5)
        assert count[0] == 1

    def test_rejects_bad_params(self, sim, rng):
        with pytest.raises(ValueError):
            PeriodicTask(sim, 0.0, lambda: None, stagger=False)
        with pytest.raises(ValueError):
            PeriodicTask(sim, 1.0, lambda: None, jitter=1.5, rng=rng)
        with pytest.raises(ValueError):
            PeriodicTask(sim, 1.0, lambda: None, jitter=0.1)  # jitter needs rng


@pytest.fixture
def sim():
    return Simulator()
