"""RPC layer: reply correlation, timeouts, dead-peer semantics."""

import numpy as np
import pytest

from repro.sim.kernel import Simulator
from repro.sim.network import LatencyModel, Network
from repro.sim.rpc import RpcLayer


class RpcEndpoint:
    """Minimal endpoint delegating all traffic to the RPC layer."""

    def __init__(self, node_id, rpc):
        self.node_id = node_id
        self.rpc = rpc
        self.alive = True

    def handle_message(self, msg):
        assert self.rpc.handle_message(self.node_id, msg)


@pytest.fixture
def setup():
    sim = Simulator()
    network = Network(sim, np.random.default_rng(0),
                      LatencyModel(mean=0.01, jitter=0.0))
    rpc = RpcLayer(sim, network, default_timeout=1.0)
    a, b = RpcEndpoint(1, rpc), RpcEndpoint(2, rpc)
    network.register(a)
    network.register(b)
    return sim, network, rpc, a, b


class TestCalls:
    def test_request_reply_roundtrip(self, setup):
        sim, _, rpc, a, b = setup
        rpc.serve(2, lambda method, payload, respond: respond(payload * 2))
        results = []
        rpc.call(1, 2, "double", 21, results.append, lambda: results.append("TO"))
        sim.run()
        assert results == [42]
        assert rpc.stats.replies == 1 and rpc.stats.timeouts == 0

    def test_timeout_on_dead_server(self, setup):
        sim, _, rpc, a, b = setup
        rpc.serve(2, lambda m, p, r: r(p))
        b.alive = False
        results = []
        rpc.call(1, 2, "echo", "x", results.append, lambda: results.append("TO"))
        sim.run()
        assert results == ["TO"]
        assert rpc.stats.timeouts == 1

    def test_timeout_when_no_handler(self, setup):
        sim, _, rpc, a, b = setup  # node 2 never calls serve()
        results = []
        rpc.call(1, 2, "echo", "x", results.append, lambda: results.append("TO"))
        sim.run()
        assert results == ["TO"]

    def test_exactly_one_outcome(self, setup):
        # A reply arriving after the timeout fired must be discarded.
        sim, network, rpc, a, b = setup
        def slow_handler(method, payload, respond):
            sim.schedule(5.0, respond, payload)  # responds after timeout
        rpc.serve(2, slow_handler)
        results = []
        rpc.call(1, 2, "slow", "v", results.append, lambda: results.append("TO"),
                 timeout=0.5)
        sim.run()
        assert results == ["TO"]

    def test_deferred_reply_within_timeout(self, setup):
        sim, _, rpc, a, b = setup
        def deferred(method, payload, respond):
            sim.schedule(0.2, respond, "later")
        rpc.serve(2, deferred)
        results = []
        rpc.call(1, 2, "defer", None, results.append, lambda: results.append("TO"))
        sim.run()
        assert results == ["later"]

    def test_concurrent_calls_correlated(self, setup):
        sim, _, rpc, a, b = setup
        rpc.serve(2, lambda m, p, r: r(p + 1))
        results = {}
        for i in range(10):
            rpc.call(1, 2, "inc", i,
                     (lambda i: lambda v: results.__setitem__(i, v))(i),
                     lambda: None)
        sim.run()
        assert results == {i: i + 1 for i in range(10)}

    def test_method_stats(self, setup):
        sim, _, rpc, a, b = setup
        rpc.serve(2, lambda m, p, r: r(None))
        rpc.call(1, 2, "ping", None, lambda _: None, lambda: None)
        rpc.call(1, 2, "ping", None, lambda _: None, lambda: None)
        rpc.call(1, 2, "get", None, lambda _: None, lambda: None)
        sim.run()
        assert rpc.stats.by_method == {"ping": 2, "get": 1}

    def test_unserve_stops_answering(self, setup):
        sim, _, rpc, a, b = setup
        rpc.serve(2, lambda m, p, r: r("up"))
        rpc.unserve(2)
        results = []
        rpc.call(1, 2, "q", None, results.append, lambda: results.append("TO"))
        sim.run()
        assert results == ["TO"]

    def test_bad_timeout_rejected(self):
        sim = Simulator()
        network = Network(sim, np.random.default_rng(0))
        with pytest.raises(ValueError):
            RpcLayer(sim, network, default_timeout=0.0)

    def test_non_rpc_message_not_consumed(self, setup):
        from repro.sim.network import Message

        _, _, rpc, a, b = setup
        assert rpc.handle_message(1, Message("other", 2, 1)) is False
