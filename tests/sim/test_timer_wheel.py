"""Timer wheel: heap-identical firing order, O(1) cancel, batching."""

import pytest

from repro.sim.kernel import (
    WHEEL_FANOUT,
    WHEEL_GRANULARITY,
    Simulator,
)


class TestWheelOrdering:
    def test_wheel_timers_fire_in_time_order(self, sim):
        log = []
        sim.schedule_timer(3.0, log.append, "c")
        sim.schedule_timer(1.0, log.append, "a")
        sim.schedule_timer(2.0, log.append, "b")
        sim.run()
        assert log == ["a", "b", "c"]
        assert sim.now == 3.0

    def test_wheel_and_heap_ties_fire_in_insertion_order(self, sim):
        """The bit-identity contract: wheel timers share the heap's global
        sequence counter, so same-time events fire in the exact order they
        were scheduled, regardless of which structure held them."""
        log = []
        sim.schedule(5.0, log.append, "heap-1")
        sim.schedule_timer(5.0, log.append, "wheel-1")
        sim.post(5.0, log.append, "post-1")
        sim.schedule_timer(5.0, log.append, "wheel-2")
        sim.schedule(5.0, log.append, "heap-2")
        sim.run()
        assert log == ["heap-1", "wheel-1", "post-1", "wheel-2", "heap-2"]

    def test_firing_order_identical_with_wheel_disabled(self):
        """A/B: the same schedule produces the same log with the wheel
        routed through the plain heap (GridConfig.timer_wheel=False path)."""
        def build(sim, log):
            # Delays spanning several wheel levels plus exact ties.
            for i, delay in enumerate((0.2, 40.0, 40.0, 7.5, 2000.0,
                                       0.2, 7.5, 131071.0)):
                if i % 2:
                    sim.schedule(delay, log.append, (i, delay))
                else:
                    sim.schedule_timer(delay, log.append, (i, delay))

        logs = []
        for use_wheel in (True, False):
            sim = Simulator(timer_wheel=use_wheel)
            log = []
            build(sim, log)
            sim.run()
            logs.append(log)
        assert logs[0] == logs[1]

    def test_cascade_preserves_exact_fire_time(self, sim):
        """A timer bucketed at a coarse level cascades down and still fires
        at its exact scheduled time, not at bucket granularity."""
        fired = []
        delay = WHEEL_GRANULARITY * WHEEL_FANOUT ** 2 * 3 + 0.125
        sim.schedule_timer(delay, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [delay]
        assert sim._wheel.cascades >= 1

    def test_zero_delay_timer_joins_current_batch(self, sim):
        """schedule_timer(0) routes through the heap so it runs within the
        *current* timestamp batch, after already-queued same-time events."""
        log = []

        def first():
            log.append("first")
            sim.schedule_timer(0.0, log.append, "zero-delay")

        sim.schedule(1.0, first)
        sim.schedule(1.0, log.append, "second")
        sim.run()
        assert log == ["first", "second", "zero-delay"]
        assert sim.now == 1.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule_timer(-1.0, lambda: None)

    def test_peek_time_sees_bucketed_timer(self, sim):
        sim.schedule_timer(100.0, lambda: None)
        sim.schedule(200.0, lambda: None)
        assert sim.peek_time() == 100.0


class TestWheelCancellation:
    def test_cancel_bucketed_timer_leaves_no_tombstone(self, sim):
        h = sim.schedule_timer(50.0, lambda: None)
        assert sim._wheel.live == 1
        h.cancel()
        assert sim._wheel.live == 0
        assert sim._tombstones == 0  # never touched the heap
        assert sim.events_cancelled == 1
        assert sim._wheel.timers_cancelled == 1
        assert sim.run() == 0

    def test_cancel_is_idempotent_on_wheel(self, sim):
        h = sim.schedule_timer(50.0, lambda: None)
        h.cancel()
        h.cancel()
        h.cancel()
        assert sim.events_cancelled == 1
        assert sim._wheel.timers_cancelled == 1
        assert sim._wheel.live == 0

    def test_cancel_after_transfer_is_heap_tombstone(self, sim):
        """A timer the wheel already handed to the heap cancels like any
        heap event: one tombstone, one cancellation, exactly once."""
        log = []
        victim = sim.schedule_timer(5.0, log.append, "victim")
        sim.schedule(5.0, log.append, "tick")

        def killer():
            victim.cancel()
            victim.cancel()  # idempotent post-transfer too

        sim.schedule(1.0, killer)
        # Step past the killer only: at t=1 the wheel has NOT yet been
        # drained for t=5, so the cancel is an O(1) wheel cancel.
        sim.run()
        assert log == ["tick"]
        assert sim.events_cancelled == 1

    def test_live_pending_counts_wheel_timers(self, sim):
        sim.schedule_timer(10.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        assert sim.live_pending == 2
        assert sim.pending == 2


class TestBatchedDispatch:
    def test_single_now_per_timestamp_batch(self, sim):
        """Every callback in a same-timestamp batch observes the same
        clock value — the batch advances ``now`` once."""
        seen = []
        for _ in range(5):
            sim.schedule(2.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.0] * 5

    def test_batch_drains_events_scheduled_by_the_batch(self, sim):
        """Zero-delay events scheduled from inside a batch extend that
        batch (higher seq => fire last), matching the unbatched loop."""
        log = []

        def head(n):
            log.append(f"head-{n}")
            if n == 0:
                sim.schedule(0.0, log.append, "tail")

        sim.schedule(3.0, head, 0)
        sim.schedule(3.0, head, 1)
        sim.run()
        assert log == ["head-0", "head-1", "tail"]

    def test_max_events_can_stop_mid_batch(self, sim):
        log = []
        for i in range(4):
            sim.schedule(1.0, log.append, i)
        assert sim.run(max_events=2) == 2
        assert log == [0, 1]
        assert sim.run() == 2
        assert log == [0, 1, 2, 3]

    def test_until_bound_respected_for_wheel_only_queue(self, sim):
        """run(until=...) with nothing in the heap must not drain wheel
        buckets that start beyond the bound."""
        log = []
        sim.schedule_timer(10.0, log.append, "late")
        sim.run(until=5.0)
        assert log == []
        assert sim.now == 5.0
        sim.run()
        assert log == ["late"]
