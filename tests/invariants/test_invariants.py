"""Property-based invariant harness over the adversarial scenario packs.

Instead of pinning one golden trajectory, these tests run *randomized*
(scenario, seed, mitigation) cells through the full protocol stack and
assert properties that must hold on **every** trajectory:

* **Terminal-state totality** — a drained run leaves every job in a
  terminal state (COMPLETED / FAILED / LOST); a truncated run is flagged
  loudly (``finished`` False) rather than silently reported.
* **Terminal exclusivity** — no job is accounted done twice: the client
  delivers each job to the metrics layer exactly once, so a job can
  never be counted both FAILED and COMPLETED (the double-count bug the
  heal/heartbeat race used to cause).
* **Registry consistency** — the columnar :class:`NodeRegistry` mirrors
  (alive / queue_len / jobs_executed / busy_time) agree with a per-node
  scan after arbitrary crash/partition/heal interleavings.
* **Job-table consistency** — the columnar :class:`JobTable` mirrors
  (state / owner / run-node / heartbeat / deadline) agree with a
  per-job scan under the same interleavings.
* **Span-tree well-formedness** — the telemetry timeline reconstructs
  with no orphan spans, and on a drained run every traced job carries a
  terminal event.
* **Wheel == heap** — the timer-wheel and plain-heap kernels produce
  identical per-job fates under correlated fault patterns.

The cell grid is sampled from a fixed-seed RNG at collection time, so
"randomized" is still reproducible run to run.  Everything here is
marked ``invariants``; cells are sized so the whole module stays in the
single-digit seconds and tier-1 stays fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import build_population, drive
from repro.grid.job import JobState
from repro.grid.system import DesktopGrid, GridConfig
from repro.match import make_matchmaker
from repro.scenarios import get_scenario, scenario_names
from repro.telemetry import Telemetry
from repro.telemetry.timeline import timeline_from_bus
from repro.workloads.spec import WorkloadConfig

pytestmark = pytest.mark.invariants

#: Mitigation overrides some cells run with (thresholds tightened so the
#: knobs actually engage at this tiny scale).
MITIGATED = {
    "speculative": True, "speculative_threshold": 4.0,
    "replicate": True, "replicate_threshold": 3,
    "admission": True, "admission_quota": 32,
}

TERMINAL = (JobState.COMPLETED, JobState.FAILED, JobState.LOST)


def _workload(n_nodes: int = 24, n_jobs: int = 60) -> WorkloadConfig:
    mean_work = 40.0
    return WorkloadConfig(
        n_nodes=n_nodes, n_jobs=n_jobs, node_mode="mixed", job_mode="mixed",
        constraint_prob=0.3, mean_work=mean_work,
        mean_interarrival=mean_work / (0.5 * n_nodes),
    )


def run_and_check(scenario_name: str, seed: int, *, mitigated: bool = False,
                  timer_wheel: bool = True, max_time: float = 30_000.0,
                  n_nodes: int = 24, n_jobs: int = 60) -> DesktopGrid:
    """Run one scenario cell end to end and assert every invariant.

    Returns the drained grid so callers can make extra assertions.
    """
    scenario = get_scenario(scenario_name)
    wl = _workload(n_nodes, n_jobs)
    nodes, stream = build_population(wl, seed)
    stream = scenario.shaped_stream(stream, seed)
    overrides = dict(scenario.grid_overrides)
    if mitigated:
        overrides.update(MITIGATED)
    cfg = GridConfig(seed=seed, spec=wl.spec, timer_wheel=timer_wheel,
                     **overrides)
    tel = Telemetry(sample_interval=100.0)
    grid = DesktopGrid(cfg, make_matchmaker("rn-tree"), nodes, telemetry=tel)
    scenario.install_faults(grid)
    finished = drive(grid, wl, stream, max_time=max_time)
    check_invariants(grid, finished, tel)
    return grid


def check_invariants(grid: DesktopGrid, finished: bool,
                     tel: Telemetry | None = None) -> None:
    """The properties every trajectory must satisfy."""
    jobs = list(grid.jobs.values())

    # -- terminal-state totality (or a loud truncation flag) --------------
    # A truncated run (finished=False) may leave jobs in flight; that is
    # the loud flag.  A *drained* run may not.
    if finished:
        stuck = [j for j in jobs if j.state not in TERMINAL]
        assert not stuck, (
            f"drained run left non-terminal jobs: {stuck[:5]}")

    # -- terminal exclusivity: each job accounted done exactly once -------
    done = grid.metrics.done
    done_guids = [j.guid for j in done]
    assert len(done_guids) == len(set(done_guids)), (
        "a job was delivered to the metrics layer twice — it was counted "
        "under two terminal states (e.g. both FAILED and COMPLETED)")
    for j in done:
        assert j.state in TERMINAL, (
            f"{j!r} sits in metrics.done but is not terminal — a terminal "
            "state was overwritten after accounting")
    s = grid.metrics.summary()
    assert s["completed"] + s["failed"] + s["lost"] == s["jobs_done"]
    if finished:
        # Every grid job settled through the client exactly once.
        # (done may be larger: admission-rejected jobs are accounted
        # without ever entering grid.jobs.)
        accounted = {id(j) for j in done}
        missing = [j for j in jobs if id(j) not in accounted]
        assert not missing, (
            f"settled jobs never reached the metrics layer: {missing[:5]}")

    # -- columnar registry mirrors stay exact -----------------------------
    problems = grid.registry.check_consistency()
    assert problems == [], f"registry drift: {problems[:5]}"

    # -- columnar job-table mirrors stay exact ----------------------------
    # Every column of the JobTable (state/owner plus the record mirrors
    # the monitor and drain checks read) must agree with a per-object
    # scan after arbitrary crash/partition/heal interleavings.
    if grid.job_table is not None:
        jt_problems = grid.job_table.check_consistency(grid)
        assert jt_problems == [], f"job-table drift: {jt_problems[:5]}"

    # -- span-tree well-formedness ----------------------------------------
    if tel is not None:
        tl = timeline_from_bus(tel.bus)
        a = tl.anomalies()
        assert a["orphan_spans"] == 0, a
        assert a["truncated_records"] == 0, a
        if finished:
            assert a["jobs_without_terminal"] == 0, a


def _sample_cells(n: int = 20) -> list[tuple[str, int, bool]]:
    """Deterministically sample n randomized (scenario, seed, mitigated)
    cells, round-robin over the catalog so every scenario is covered at
    least twice at n=20."""
    names = scenario_names()
    rng = np.random.default_rng(20260808)
    cells: list[tuple[str, int, bool]] = []
    for i in range(n):
        seed = int(rng.integers(1, 100_000))
        mitigated = bool(rng.integers(0, 2))
        cells.append((names[i % len(names)], seed, mitigated))
    return cells


CELLS = _sample_cells(20)


class TestRandomizedCells:
    @pytest.mark.parametrize(
        "scenario,seed,mitigated", CELLS,
        ids=[f"{s}-s{seed}-{'mit' if m else 'bare'}"
             for s, seed, m in CELLS])
    def test_invariants_hold(self, scenario, seed, mitigated):
        run_and_check(scenario, seed, mitigated=mitigated)


class TestTruncationIsLoud:
    def test_truncated_run_flags_not_asserts(self):
        """A run cut off mid-flight reports finished=False; the harness
        accepts in-flight jobs then, but still checks exclusivity and
        registry consistency."""
        scenario = get_scenario("correlated_failure")
        wl = _workload()
        nodes, stream = build_population(wl, 5)
        cfg = GridConfig(seed=5, spec=wl.spec, **scenario.grid_overrides)
        grid = DesktopGrid(cfg, make_matchmaker("rn-tree"), nodes)
        scenario.install_faults(grid)
        finished = drive(grid, wl, stream, max_time=50.0)
        assert not finished
        check_invariants(grid, finished)


class TestWheelHeapEquivalence:
    """The timer wheel must not change a single job's fate even under
    correlated fault patterns (mass cancels on rack crashes, partition
    heals re-arming heartbeats, double-failure adoption races)."""

    @pytest.mark.parametrize("scenario", ["correlated_failure",
                                          "partition_storm",
                                          "double_failure"])
    def test_fates_identical(self, scenario):
        def fates(timer_wheel: bool):
            grid = run_and_check(scenario, 1234, timer_wheel=timer_wheel)
            return (sorted((g, j.state.name, j.attempt)
                           for g, j in grid.jobs.items()),
                    repr(sorted(grid.metrics.summary().items())))

        assert fates(True) == fates(False)
