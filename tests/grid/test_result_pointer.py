"""Result-pointer return path (§2) and input-staging cost."""

import pytest

from repro.grid.job import Job, JobProfile, JobState
from repro.grid.system import GridConfig

from tests.conftest import make_small_grid


def submit(grid, client, name, work=10.0, **profile_kwargs):
    job = Job(profile=JobProfile(name=name, client_id=client.node_id,
                                 requirements=(0.0, 0.0, 0.0), work=work,
                                 **profile_kwargs))
    grid.submit_at(0.0, client, job)
    return job


class TestResultPointer:
    @pytest.mark.parametrize("mm_name", ["rn-tree", "can", "can-push",
                                         "ttl-walk"])
    def test_pointer_mode_completes_with_fetched_value(self, mm_name):
        cfg = GridConfig(seed=7, result_return="pointer")
        grid = make_small_grid(mm_name, n_nodes=20, cfg=cfg)
        client = grid.client("c")
        jobs = [submit(grid, client, f"ptr-{mm_name}-{i}") for i in range(10)]
        assert grid.run_until_done(max_time=10000)
        for job in jobs:
            assert job.state is JobState.COMPLETED
            assert job.result == f"output:{job.name}"
            assert job.extra.get("result_store_hops", 0) >= 0
        assert grid.network.stats.by_kind.get("result-pointer", 0) == 10
        assert grid.network.stats.by_kind.get("result", 0) == 0

    def test_result_replicated_in_overlay(self):
        cfg = GridConfig(seed=7, result_return="pointer")
        grid = make_small_grid("rn-tree", n_nodes=20, cfg=cfg)
        client = grid.client("c")
        job = submit(grid, client, "replicated-result")
        grid.run_until_done(max_time=10000)
        from repro.match.storage import result_key

        holders = [n for n in grid.matchmaker.chord.live_nodes()
                   if result_key(job) in n.store]
        assert len(holders) == grid.matchmaker.result_replicas

    def test_centralized_falls_back_to_inline(self):
        cfg = GridConfig(seed=7, result_return="pointer")
        grid = make_small_grid("centralized", n_nodes=10, cfg=cfg)
        client = grid.client("c")
        job = submit(grid, client, "inline-fallback")
        assert grid.run_until_done(max_time=10000)
        assert job.state is JobState.COMPLETED
        assert grid.network.stats.by_kind.get("result-pointer", 0) == 0
        assert grid.network.stats.by_kind.get("result", 0) == 1

    def test_lost_replicas_trigger_resubmission(self):
        cfg = GridConfig(seed=7, result_return="pointer",
                         heartbeats_enabled=True, heartbeat_interval=1.0,
                         relay_status_to_client=True,
                         client_resubmit_enabled=True,
                         client_check_interval=5.0, client_timeout=15.0)
        grid = make_small_grid("rn-tree", n_nodes=16, cfg=cfg)
        client = grid.client("c")
        job = submit(grid, client, "fragile-result", work=20.0)

        # Sabotage: make every fetch fail once, then behave.
        real_fetch = grid.matchmaker.fetch_result
        state = {"fail": True}

        def flaky_fetch(j):
            if state["fail"]:
                return None, 2
            return real_fetch(j)

        grid.matchmaker.fetch_result = flaky_fetch
        grid.run(until=40.0)
        assert job.state is not JobState.COMPLETED  # pointer unresolved
        state["fail"] = False
        assert grid.run_until_done(max_time=20000)
        assert job.state is JobState.COMPLETED
        assert job.attempt >= 2  # the watchdog resubmitted

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            GridConfig(result_return="telepathy")


class TestInputStaging:
    def test_staging_extends_service_time(self):
        cfg = GridConfig(seed=7, staging_bandwidth_kbps=10.0)
        grid = make_small_grid(cfg=cfg, n_nodes=1)
        client = grid.client("c")
        # 100 KB in + 100 KB out at 10 KB/s = 20 s of staging on a 5 s job.
        job = submit(grid, client, "heavy-io", work=5.0,
                     input_size_kb=100.0, output_size_kb=100.0)
        grid.run_until_done(max_time=10000)
        service = job.finish_time - job.start_time
        assert service == pytest.approx(25.0, abs=1.0)

    def test_default_staging_negligible(self):
        grid = make_small_grid(n_nodes=1)
        client = grid.client("c")
        job = submit(grid, client, "tiny-io", work=5.0)
        grid.run_until_done(max_time=10000)
        assert job.finish_time - job.start_time == pytest.approx(5.0, abs=0.5)

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            GridConfig(staging_bandwidth_kbps=0.0)
