"""Client behaviour: submission, result collection, resubmission watchdog."""

import pytest

from repro.grid.job import Job, JobProfile, JobState
from repro.grid.system import GridConfig

from tests.conftest import make_small_grid


def make_job(client, name, work=5.0):
    return Job(profile=JobProfile(name=name, client_id=client.node_id,
                                  requirements=(0.0, 0.0, 0.0), work=work))


class TestSubmission:
    def test_submit_sets_timestamps_and_state(self):
        grid = make_small_grid()
        client = grid.client("c")
        job = make_job(client, "t1")
        grid.submit_at(5.0, client, job)
        grid.run(until=6.0)
        assert job.submit_time == pytest.approx(5.0)
        assert job.attempt == 1
        assert job.guid in grid.jobs

    def test_result_collection(self):
        grid = make_small_grid()
        client = grid.client("c")
        job = make_job(client, "t2")
        grid.submit_at(0.0, client, job)
        grid.run_until_done(max_time=1000)
        assert job in client.completed
        assert job.guid not in client.pending
        assert job.result == "output:t2"
        assert job.finish_time > job.start_time

    def test_duplicate_result_ignored(self):
        grid = make_small_grid()
        client = grid.client("c")
        job = make_job(client, "t3")
        grid.submit_at(0.0, client, job)
        grid.run_until_done(max_time=1000)
        from repro.sim.network import Message

        client.handle_message(Message("result", src=1, dst=client.node_id,
                                      payload=job))
        assert client.duplicate_results == 1
        assert len(client.completed) == 1

    def test_metrics_record_once_per_job(self):
        grid = make_small_grid()
        client = grid.client("c")
        jobs = [make_job(client, f"m-{i}") for i in range(3)]
        for j in jobs:
            grid.submit_at(0.0, client, j)
        grid.run_until_done(max_time=1000)
        assert len(grid.metrics.done) == 3

    def test_result_callbacks_invoked(self):
        grid = make_small_grid()
        client = grid.client("c")
        seen = []
        client.result_callbacks.append(lambda j: seen.append(j.name))
        job = make_job(client, "cb")
        grid.submit_at(0.0, client, job)
        grid.run_until_done(max_time=1000)
        assert seen == ["cb"]

    def test_duplicate_client_name_rejected(self):
        grid = make_small_grid()
        grid.client("dup")
        with pytest.raises(ValueError):
            grid.client("dup")


class TestResubmissionWatchdog:
    def test_abandons_after_max_attempts(self):
        # Silence without routing failure: the grid stays up (so every
        # resubmission routes to an owner) but status relay is off, so the
        # client hears nothing until the (slow) job finishes — which the
        # watchdog's patience does not cover.
        cfg = GridConfig(seed=7, heartbeats_enabled=True,
                         heartbeat_interval=1.0,
                         relay_status_to_client=False,
                         client_resubmit_enabled=True,
                         client_check_interval=2.0,
                         client_timeout=5.0,
                         client_max_attempts=2,
                         match_retries=0,
                         match_retry_backoff=1.0)
        grid = make_small_grid(cfg=cfg, n_nodes=4)
        client = grid.client("c")
        job = make_job(client, "hopeless", work=500.0)
        grid.submit_at(0.0, client, job)
        grid.run(until=100.0)
        assert job.state is JobState.LOST
        assert job.attempt > 2
        assert job.guid not in client.pending
        assert job in grid.metrics.lost()

    def test_dead_grid_fails_fast_not_silently(self):
        # Routing failure is *reported*: with every node dead, injection
        # exhausts its retries and the job comes back FAILED promptly —
        # not stuck in SUBMITTED until the watchdog gives up.
        cfg = GridConfig(seed=7, heartbeats_enabled=True,
                         heartbeat_interval=1.0,
                         relay_status_to_client=True,
                         client_resubmit_enabled=True,
                         client_check_interval=2.0,
                         client_timeout=5.0,
                         client_max_attempts=2,
                         match_retries=0,
                         match_retry_backoff=1.0)
        grid = make_small_grid(cfg=cfg, n_nodes=4)
        for node in list(grid.node_list):
            grid.crash_node(node.node_id)
        client = grid.client("c")
        job = make_job(client, "hopeless", work=30.0)
        grid.submit_at(0.0, client, job)
        grid.run(until=60.0)
        assert job.state is JobState.FAILED
        assert job.failure_reason == "owner routing failed"
        assert job.guid not in client.pending
        assert job in grid.metrics.failed()

    def test_no_resubmission_while_status_flows(self):
        cfg = GridConfig(seed=7, heartbeats_enabled=True,
                         heartbeat_interval=1.0,
                         relay_status_to_client=True,
                         client_resubmit_enabled=True,
                         client_check_interval=2.0,
                         client_timeout=6.0)
        grid = make_small_grid("rn-tree", n_nodes=12, cfg=cfg)
        client = grid.client("c")
        job = make_job(client, "steady", work=40.0)
        grid.submit_at(0.0, client, job)
        grid.run_until_done(max_time=1000)
        assert job.state is JobState.COMPLETED
        assert client.resubmissions == 0
        assert job.attempt == 1
