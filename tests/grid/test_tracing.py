"""Grid-integrated tracing: lifecycle events land in the recorder."""

from repro.grid.job import Job, JobProfile
from repro.grid.system import DesktopGrid, GridConfig
from repro.match import make_matchmaker
from repro.sim.trace import TraceRecorder
from repro.workloads import WorkloadConfig, generate_nodes

import numpy as np


def traced_grid(categories=None, n_nodes=10, seed=7):
    nodes = generate_nodes(WorkloadConfig(n_nodes=n_nodes, node_mode="mixed"),
                           np.random.default_rng(seed))
    trace = TraceRecorder(categories=categories)
    grid = DesktopGrid(GridConfig(seed=seed), make_matchmaker("rn-tree"),
                       nodes, trace=trace)
    return grid, trace


def run_jobs(grid, n=5, work=5.0):
    client = grid.client("c")
    jobs = []
    for i in range(n):
        job = Job(profile=JobProfile(name=f"trace-{i}",
                                     client_id=client.node_id,
                                     requirements=(0.0, 0.0, 0.0), work=work))
        grid.submit_at(float(i), client, job)
        jobs.append(job)
    grid.run_until_done(max_time=10000)
    return jobs


class TestLifecycleTracing:
    def test_full_lifecycle_recorded(self):
        grid, trace = traced_grid()
        run_jobs(grid, n=5)
        for category in ("submit", "match", "start", "complete"):
            assert len(trace.by_category(category)) == 5, category

    def test_events_time_ordered_per_job(self):
        grid, trace = traced_grid()
        run_jobs(grid, n=3)
        for i in range(3):
            times = [r.time for r in trace.records
                     if r.detail.get("job") == f"trace-{i}"]
            assert times == sorted(times)
            assert len(times) == 4  # submit, match, start, complete

    def test_category_filter_respected(self):
        grid, trace = traced_grid(categories=["complete"])
        run_jobs(grid, n=4)
        assert len(trace.by_category("complete")) == 4
        assert len(trace.by_category("submit")) == 0

    def test_crash_recovery_events(self):
        grid, trace = traced_grid()
        node = grid.node_list[0]
        grid.crash_node(node.node_id)
        grid.recover_node(node.node_id)
        assert trace.by_category("crash")[0].detail["node"] == node.name
        assert trace.by_category("recover")[0].detail["node"] == node.name

    def test_default_grid_traces_nothing(self):
        nodes = generate_nodes(WorkloadConfig(n_nodes=6, node_mode="mixed"),
                               np.random.default_rng(1))
        grid = DesktopGrid(GridConfig(seed=1), make_matchmaker("centralized"),
                           nodes)
        run_jobs(grid, n=2)
        assert len(grid.trace) == 0

    def test_trace_detail_carries_wait_time(self):
        grid, trace = traced_grid()
        jobs = run_jobs(grid, n=2)
        completes = {r.detail["job"]: r.detail["wait"]
                     for r in trace.by_category("complete")}
        for job in jobs:
            assert completes[job.name] == job.wait_time
