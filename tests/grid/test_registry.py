"""Columnar NodeRegistry: mirrors must track per-node state exactly."""

import numpy as np

from repro.experiments.runner import build_population, drive
from repro.grid.system import DesktopGrid, GridConfig
from repro.match import make_matchmaker
from repro.sim.failure import CrashRecoveryProcess
from repro.workloads.spec import WorkloadConfig

from tests.conftest import make_small_grid


class TestRegistryBasics:
    def test_initial_state(self):
        grid = make_small_grid(n_nodes=8)
        reg = grid.registry
        assert len(reg) == 8
        assert reg.live_count() == 8
        assert reg.live_queue_lens().sum() == 0
        assert reg.execution_counts() == [0] * 8
        assert reg.check_consistency() == []

    def test_index_maps_node_list_order(self):
        grid = make_small_grid(n_nodes=8)
        for i, node in enumerate(grid.node_list):
            assert grid.registry.index[node.node_id] == i
            assert node._reg_idx == i

    def test_liveness_flips_are_mirrored(self):
        grid = make_small_grid(n_nodes=8)
        reg = grid.registry
        node = grid.node_list[3]
        grid.crash_node(node.node_id)
        assert not reg.alive[3]
        assert reg.live_count() == 7
        grid.recover_node(node.node_id)
        assert reg.alive[3]
        other = grid.node_list[5]
        grid.partition_node(other.node_id)
        assert not reg.alive[5]
        grid.heal_node(other.node_id)
        assert reg.alive[5]
        assert reg.check_consistency() == []

    def test_loads_reads_queue_column(self):
        grid = make_small_grid(n_nodes=8)
        node = grid.node_list[2]
        loads = grid.registry.loads([node.node_id])
        assert loads == {node.node_id: 0}


class TestRegistryUnderLoad:
    def test_consistent_after_failure_free_run(self):
        wl = WorkloadConfig(n_nodes=40, n_jobs=120, mean_interarrival=0.5)
        nodes, stream = build_population(wl, seed=5)
        grid = DesktopGrid(GridConfig(seed=5, spec=wl.spec),
                           make_matchmaker("rn-tree"), nodes)
        drive(grid, wl, stream)
        reg = grid.registry
        assert reg.check_consistency() == []
        # The columns agree with a from-scratch object scan.
        assert reg.execution_counts() == \
            [n.jobs_executed for n in grid.node_list]
        assert float(reg.busy_times().sum()) > 0
        assert np.array_equal(
            reg.live_queue_lens(),
            np.array([n.queue_len for n in grid.node_list if n.alive]))

    def test_consistent_after_churny_run(self):
        """The drift tripwire: every liveness/queue mutation path (crash,
        recover, heartbeat failure recovery, sandbox rejection, dispatch)
        must have updated its mirror by the end of a churny run."""
        wl = WorkloadConfig(n_nodes=40, n_jobs=120, mean_interarrival=0.5,
                            mean_work=60.0)
        nodes, stream = build_population(wl, seed=9)
        cfg = GridConfig(seed=9, spec=wl.spec, heartbeats_enabled=True,
                         client_resubmit_enabled=True)
        grid = DesktopGrid(cfg, make_matchmaker("rn-tree"), nodes)
        churn = CrashRecoveryProcess(
            grid.sim, grid.streams["churn"],
            [n.node_id for n in grid.node_list],
            crash_fn=grid.crash_node, recover_fn=grid.recover_node,
            mean_uptime=120.0, mean_downtime=40.0)
        drive(grid, wl, stream, max_time=3000.0)
        assert churn.crashes > 0
        assert grid.registry.check_consistency() == []
