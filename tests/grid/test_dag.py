"""The DAGMan-style dependency scheduler (§5 future work)."""

import pytest

from repro.grid.dag import DagJobKind, DagScheduler
from repro.grid.job import JobState

from tests.conftest import make_small_grid

UNCONSTRAINED = (0.0, 0.0, 0.0)


def make_dag_grid():
    grid = make_small_grid()
    client = grid.client("workflow")
    return grid, client, DagScheduler(grid, client)


class TestDeclaration:
    def test_parents_must_exist(self):
        _, _, dag = make_dag_grid()
        with pytest.raises(ValueError):
            dag.add_job("child", UNCONSTRAINED, 1.0, deps=("ghost",))

    def test_duplicate_names_rejected(self):
        _, _, dag = make_dag_grid()
        dag.add_job("a", UNCONSTRAINED, 1.0)
        with pytest.raises(ValueError):
            dag.add_job("a", UNCONSTRAINED, 1.0)

    def test_kind_accepts_strings(self):
        _, _, dag = make_dag_grid()
        job = dag.add_job("a", UNCONSTRAINED, 1.0, kind="analysis")
        assert job.extra["dag_kind"] == "analysis"
        assert dag.nodes["a"].kind is DagJobKind.ANALYSIS

    def test_no_declaration_after_submit(self):
        _, _, dag = make_dag_grid()
        dag.add_job("a", UNCONSTRAINED, 1.0)
        dag.submit()
        with pytest.raises(RuntimeError):
            dag.add_job("b", UNCONSTRAINED, 1.0)


class TestExecutionOrder:
    def test_analysis_runs_after_simulation(self):
        grid, _, dag = make_dag_grid()
        sim_job = dag.add_job("sim", UNCONSTRAINED, 10.0)
        ana_job = dag.add_job("ana", UNCONSTRAINED, 5.0, deps=("sim",),
                              kind="analysis")
        assert dag.submit() == 1  # only the root released
        grid.run_until_done(max_time=1000)
        assert dag.complete
        assert ana_job.submit_time >= sim_job.finish_time

    def test_diamond_dependency(self):
        grid, _, dag = make_dag_grid()
        dag.add_job("root", UNCONSTRAINED, 5.0)
        dag.add_job("left", UNCONSTRAINED, 5.0, deps=("root",))
        dag.add_job("right", UNCONSTRAINED, 8.0, deps=("root",))
        final = dag.add_job("join", UNCONSTRAINED, 2.0,
                            deps=("left", "right"))
        dag.submit()
        grid.run_until_done(max_time=1000)
        assert dag.complete
        left, right = dag.nodes["left"].job, dag.nodes["right"].job
        assert final.submit_time >= max(left.finish_time, right.finish_time)

    def test_outputs_wired_to_inputs(self):
        grid, _, dag = make_dag_grid()
        dag.add_job("sim", UNCONSTRAINED, 5.0)
        ana = dag.add_job("ana", UNCONSTRAINED, 2.0, deps=("sim",))
        dag.submit()
        grid.run_until_done(max_time=1000)
        assert ana.extra["inputs"] == {"sim": "output:sim"}

    def test_independent_roots_run_concurrently(self):
        grid, _, dag = make_dag_grid()
        jobs = [dag.add_job(f"root-{i}", UNCONSTRAINED, 20.0)
                for i in range(4)]
        assert dag.submit() == 4
        grid.run_until_done(max_time=1000)
        # On a 16-node grid the four roots overlap in time.
        starts = [j.start_time for j in jobs]
        finishes = [j.finish_time for j in jobs]
        assert max(starts) < min(finishes)

    def test_progress(self):
        grid, _, dag = make_dag_grid()
        dag.add_job("a", UNCONSTRAINED, 5.0)
        dag.add_job("b", UNCONSTRAINED, 5.0, deps=("a",))
        dag.submit()
        assert dag.progress() == (0, 2)
        grid.run_until_done(max_time=1000)
        assert dag.progress() == (2, 2)

    def test_double_submit_rejected(self):
        _, _, dag = make_dag_grid()
        dag.add_job("a", UNCONSTRAINED, 1.0)
        dag.submit()
        with pytest.raises(RuntimeError):
            dag.submit()

    def test_all_jobs_complete_state(self):
        grid, _, dag = make_dag_grid()
        for i in range(3):
            deps = (f"j-{i-1}",) if i else ()
            dag.add_job(f"j-{i}", UNCONSTRAINED, 3.0, deps=deps)
        dag.submit()
        grid.run_until_done(max_time=1000)
        assert all(n.job.state is JobState.COMPLETED for n in dag.nodes.values())
