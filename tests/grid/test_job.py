"""Job profiles and lifecycle accounting."""

import math

import pytest

from repro.grid.job import ACTIVE_STATES, Job, JobProfile, JobState
from repro.util.ids import guid_for


def make_profile(name="j1", work=10.0, **kwargs):
    defaults = dict(name=name, client_id=1, requirements=(0.0, 0.0, 0.0),
                    work=work)
    defaults.update(kwargs)
    return JobProfile(**defaults)


class TestJobProfile:
    def test_guid_derives_from_name(self):
        assert make_profile("alpha").guid == guid_for("alpha")

    def test_profile_is_frozen(self):
        p = make_profile()
        with pytest.raises(AttributeError):
            p.work = 5.0  # type: ignore[misc]

    def test_rejects_nonpositive_work(self):
        with pytest.raises(ValueError):
            make_profile(work=0.0)

    def test_rejects_negative_io(self):
        with pytest.raises(ValueError):
            make_profile(input_size_kb=-1.0)


class TestJobLifecycle:
    def test_initial_state(self):
        job = Job(profile=make_profile())
        assert job.state is JobState.CREATED
        assert math.isnan(job.submit_time)
        assert not job.is_done

    def test_wait_time(self):
        job = Job(profile=make_profile())
        job.submit_time = 10.0
        job.start_time = 35.0
        assert job.wait_time == 25.0

    def test_turnaround(self):
        job = Job(profile=make_profile())
        job.submit_time = 10.0
        job.finish_time = 70.0
        assert job.turnaround == 60.0

    def test_done_states(self):
        job = Job(profile=make_profile())
        for state in (JobState.COMPLETED, JobState.FAILED):
            job.state = state
            assert job.is_done
        for state in ACTIVE_STATES:
            job.state = state
            assert not job.is_done

    def test_lost_is_not_done(self):
        # LOST means the client gave up; it is terminal for metrics but
        # distinct from a clean outcome.
        job = Job(profile=make_profile())
        job.state = JobState.LOST
        assert not job.is_done

    def test_accounting_fields_start_at_zero(self):
        job = Job(profile=make_profile())
        assert job.match_hops == 0
        assert job.owner_route_hops == 0
        assert job.run_node_failures == 0
        assert job.executions == 0
