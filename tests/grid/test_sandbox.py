"""Sandbox policy enforcement (§5 containment + quotas)."""

import pytest

from repro.grid.job import JobProfile
from repro.grid.sandbox import SandboxPolicy, SandboxViolation


def profile(**kwargs):
    defaults = dict(name="p", client_id=1, requirements=(0.0, 0.0, 0.0),
                    work=10.0)
    defaults.update(kwargs)
    return JobProfile(**defaults)


class TestAdmission:
    def test_clean_job_admitted(self):
        SandboxPolicy().check_admission(profile())

    def test_network_access_denied_by_default(self):
        with pytest.raises(SandboxViolation) as exc:
            SandboxPolicy().check_admission(profile(), needs_network=True)
        assert exc.value.rule == "network"

    def test_network_allowed_when_policy_permits(self):
        SandboxPolicy(allow_network=True).check_admission(
            profile(), needs_network=True)

    def test_oversized_input_rejected(self):
        policy = SandboxPolicy(disk_quota_kb=100.0)
        with pytest.raises(SandboxViolation) as exc:
            policy.check_admission(profile(input_size_kb=200.0))
        assert exc.value.rule == "disk-quota"


class TestCompletion:
    def test_clean_completion(self):
        SandboxPolicy().check_completion(profile())

    def test_output_quota(self):
        policy = SandboxPolicy(output_quota_kb=10.0)
        with pytest.raises(SandboxViolation) as exc:
            policy.check_completion(profile(output_size_kb=20.0))
        assert exc.value.rule == "output-quota"

    def test_explicit_produced_size_overrides_declared(self):
        policy = SandboxPolicy(output_quota_kb=10.0)
        policy.check_completion(profile(output_size_kb=100.0), produced_kb=5.0)
        with pytest.raises(SandboxViolation):
            policy.check_completion(profile(output_size_kb=1.0), produced_kb=50.0)

    def test_total_footprint_quota(self):
        policy = SandboxPolicy(disk_quota_kb=100.0, output_quota_kb=90.0)
        with pytest.raises(SandboxViolation) as exc:
            policy.check_completion(profile(input_size_kb=60.0,
                                            output_size_kb=60.0))
        assert exc.value.rule == "disk-quota"


class TestRuntimeLimit:
    def test_limit_scales_with_work(self):
        policy = SandboxPolicy(max_runtime_factor=10.0)
        assert policy.runtime_limit(profile(work=30.0)) == 300.0

    def test_disabled_limit(self):
        assert SandboxPolicy(max_runtime_factor=None).runtime_limit(profile()) is None
