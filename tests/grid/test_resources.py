"""Resource vectors: satisfaction, dominance, normalization, matrices."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.grid.resources import (
    CapabilityMatrix,
    ResourceSpec,
    constraint_count,
    dominates,
    satisfies,
)

levels = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)
vec3 = st.tuples(levels, levels, levels)


class TestSatisfies:
    def test_exact_match_satisfies(self):
        assert satisfies((5.0, 5.0, 5.0), (5.0, 5.0, 5.0))

    def test_unconstrained_always_satisfied(self):
        assert satisfies((1.0, 1.0, 1.0), (0.0, 0.0, 0.0))

    def test_single_deficit_fails(self):
        assert not satisfies((5.0, 5.0, 4.9), (5.0, 5.0, 5.0))

    @given(cap=vec3, req=vec3)
    def test_matches_componentwise_definition(self, cap, req):
        assert satisfies(cap, req) == all(c >= r for c, r in zip(cap, req))


class TestDominates:
    def test_strict_requires_strict_gain(self):
        assert not dominates((5.0, 5.0), (5.0, 5.0), strict=True)
        assert dominates((5.0, 5.0), (5.0, 5.0), strict=False)

    def test_dominance(self):
        assert dominates((6.0, 5.0), (5.0, 5.0))
        assert not dominates((6.0, 4.0), (5.0, 5.0))

    @given(a=vec3, b=vec3)
    def test_antisymmetry(self, a, b):
        if dominates(a, b, strict=True):
            assert not dominates(b, a, strict=True)

    @given(a=vec3, b=vec3, c=vec3)
    def test_transitivity(self, a, b, c):
        if dominates(a, b, strict=True) and dominates(b, c, strict=True):
            assert dominates(a, c, strict=True)


class TestResourceSpec:
    def test_defaults(self):
        spec = ResourceSpec()
        assert spec.dims == 3
        assert spec.names == ("cpu", "mem", "disk")

    def test_capability_validation(self):
        spec = ResourceSpec()
        spec.validate_capability((1.0, 5.0, 10.0))
        with pytest.raises(ValueError):
            spec.validate_capability((0.0, 5.0, 10.0))  # zero capability
        with pytest.raises(ValueError):
            spec.validate_capability((1.0, 5.0, 11.0))  # above max
        with pytest.raises(ValueError):
            spec.validate_capability((1.0, 5.0))  # wrong dims

    def test_requirement_validation(self):
        spec = ResourceSpec()
        spec.validate_requirement((0.0, 0.0, 10.0))  # zero = unconstrained OK
        with pytest.raises(ValueError):
            spec.validate_requirement((-1.0, 0.0, 0.0))

    def test_normalize(self):
        spec = ResourceSpec()
        assert spec.normalize((5.0, 10.0, 1.0)) == (0.5, 1.0, 0.1)

    def test_constraint_count(self):
        assert constraint_count((0.0, 3.0, 0.0)) == 1
        assert constraint_count((1.0, 3.0, 2.0)) == 3
        assert constraint_count((0.0, 0.0, 0.0)) == 0


class TestCapabilityMatrix:
    def test_mask_matches_scalar_satisfies(self):
        spec = ResourceSpec()
        rng = np.random.default_rng(0)
        caps = [tuple(rng.integers(1, 11, 3).astype(float)) for _ in range(50)]
        matrix = CapabilityMatrix.from_capabilities(spec, caps)
        for _ in range(20):
            req = tuple(rng.integers(0, 11, 3).astype(float))
            mask = matrix.satisfying_mask(req)
            expected = np.array([satisfies(c, req) for c in caps])
            np.testing.assert_array_equal(mask, expected)

    def test_unconstrained_mask_all_true(self):
        spec = ResourceSpec()
        matrix = CapabilityMatrix.from_capabilities(
            spec, [(1.0, 1.0, 1.0), (10.0, 10.0, 10.0)])
        assert matrix.satisfying_mask((0.0, 0.0, 0.0)).all()
