"""The two-phase matchmaking pipeline's protocol paths.

Covers the rpc probe mode (timeouts drop dead candidates), acknowledged
dispatch (ack timeout falls back to the next-ranked candidate long before
the heartbeat monitor sweep would react), and the determinism guarantee
that ``probe_mode="oracle"`` reproduces pre-pipeline results exactly.
"""

import pytest

from repro.experiments.figure2 import FIGURE2_SCENARIOS
from repro.experiments.runner import run_workload
from repro.grid.job import Job, JobProfile, JobState
from repro.grid.node import OwnedJob
from repro.grid.system import GridConfig
from repro.match.select import CandidateSet

from tests.conftest import make_small_grid


def rpc_cfg(**overrides):
    defaults = dict(seed=7, probe_mode="rpc", probe_timeout=1.0)
    defaults.update(overrides)
    return GridConfig(**defaults)


def adopt_job(grid, owner, name="pipeline-job", work=5.0):
    """Fabricate a MATCHING job already owned by ``owner``."""
    client = grid.client(f"client-{name}")
    job = Job(profile=JobProfile(name=name, client_id=client.node_id,
                                 requirements=(0.0, 0.0, 0.0), work=work))
    job.owner_id = owner.node_id
    job.state = JobState.MATCHING
    grid.jobs[job.guid] = job
    client.pending[job.guid] = job  # so the result delivery completes it
    owner.owned[job.guid] = OwnedJob(job, None, grid.sim.now)
    return job


class TestRpcProbes:
    def test_probe_timeout_drops_dead_candidate(self):
        grid = make_small_grid(cfg=rpc_cfg())
        owner, dead, live = grid.node_list[:3]
        job = adopt_job(grid, owner)
        dead.crash()
        # Phase 1 happened before the crash: the dead node is still listed.
        owner._probe_candidates(
            job, CandidateSet(candidates=[dead.node_id, live.node_id]),
            retries_left=0)
        grid.run(until=30.0)
        assert job.run_node_id == live.node_id
        assert grid.rpc.stats.timeouts >= 1
        assert job.state in (JobState.QUEUED, JobState.RUNNING,
                             JobState.COMPLETED)

    def test_probe_replies_pick_least_loaded(self):
        grid = make_small_grid(cfg=rpc_cfg())
        owner, busy, idle = grid.node_list[:3]
        busy.queue.append(Job(profile=JobProfile(
            name="ballast", client_id=1, requirements=(0.0, 0.0, 0.0),
            work=1e9)))
        job = adopt_job(grid, owner)
        owner._probe_candidates(
            job, CandidateSet(candidates=[busy.node_id, idle.node_id]),
            retries_left=0)
        grid.run(until=30.0)
        assert job.run_node_id == idle.node_id

    def test_all_candidates_dead_falls_back_to_retry(self):
        grid = make_small_grid(cfg=rpc_cfg(match_retries=0,
                                           match_retry_backoff=1.0))
        owner, dead = grid.node_list[:2]
        job = adopt_job(grid, owner)
        dead.crash()
        owner._probe_candidates(
            job, CandidateSet(candidates=[dead.node_id]), retries_left=0)
        grid.run(until=30.0)
        assert job.state is JobState.FAILED
        assert job.failure_reason == "no satisfying node found"


class TestAckDispatch:
    def test_ack_timeout_falls_back_within_one_rpc_timeout(self):
        cfg = rpc_cfg(dispatch_ack=True, heartbeats_enabled=True,
                      heartbeat_interval=5.0, heartbeat_miss_limit=3)
        sweep_timeout = cfg.heartbeat_interval * cfg.heartbeat_miss_limit
        grid = make_small_grid(cfg=cfg)
        owner, target, fallback = grid.node_list[:3]
        job = adopt_job(grid, owner)
        rec = owner.owned[job.guid]
        job.run_node_id = target.node_id
        rec.run_node_id = target.node_id
        target.crash()  # dies between probe and assign
        start = grid.sim.now
        owner._dispatch(job, [target.node_id, fallback.node_id])
        grid.run(until=start + sweep_timeout)
        # Recovered via the ack timeout, not the monitor sweep:
        assert job.run_node_id == fallback.node_id
        assert job.state is JobState.COMPLETED
        assert grid.metrics.recoveries["dispatch"] == 1
        latencies = grid.metrics.recovery_latencies["dispatch"]
        assert len(latencies) == 1
        assert latencies[0] < 0.25 * sweep_timeout
        # The whole fallback fit inside one rpc timeout (plus delivery).
        assert job.enqueue_time - start < cfg.probe_timeout + 1.0

    def test_ack_timeout_with_no_fallback_rematches(self):
        grid = make_small_grid(cfg=rpc_cfg(dispatch_ack=True))
        owner, target = grid.node_list[:2]
        job = adopt_job(grid, owner)
        rec = owner.owned[job.guid]
        job.run_node_id = target.node_id
        rec.run_node_id = target.node_id
        target.crash()
        owner._dispatch(job, [target.node_id])
        grid.run(until=60.0)
        # Re-entered matchmaking from scratch and completed elsewhere.
        assert job.state is JobState.COMPLETED
        assert job.run_node_id not in (None, target.node_id)
        assert grid.metrics.recoveries["dispatch"] == 1

    def test_ack_confirms_liveness(self):
        grid = make_small_grid(cfg=rpc_cfg(dispatch_ack=True))
        owner, target = grid.node_list[:2]
        job = adopt_job(grid, owner)
        rec = owner.owned[job.guid]
        job.run_node_id = target.node_id
        rec.run_node_id = target.node_id
        rec.last_heartbeat = -100.0
        owner._dispatch(job, [target.node_id])
        grid.run(until=30.0)
        assert job.state is JobState.COMPLETED
        assert rec.last_heartbeat > -100.0  # the ack refreshed it


class TestEndToEndRpcMode:
    def test_full_protocol_under_rpc_mode(self):
        cfg = rpc_cfg(dispatch_ack=True, heartbeats_enabled=True,
                      heartbeat_interval=2.0)
        grid = make_small_grid("rn-tree", n_nodes=12, cfg=cfg)
        client = grid.client("c")
        jobs = []
        for i in range(6):
            job = Job(profile=JobProfile(name=f"rpc-{i}",
                                         client_id=client.node_id,
                                         requirements=(0.0, 0.0, 0.0),
                                         work=10.0))
            grid.submit_at(float(i), client, job)
            jobs.append(job)
        assert grid.run_until_done(max_time=5000)
        assert all(j.state is JobState.COMPLETED for j in jobs)
        assert grid.rpc.stats.calls > 0
        assert grid.rpc.stats.replies > 0

    def test_monitor_sweep_uses_rpc_liveness_probe(self):
        cfg = rpc_cfg(dispatch_ack=False, heartbeats_enabled=True,
                      heartbeat_interval=1.0, heartbeat_miss_limit=2.5)
        grid = make_small_grid("rn-tree", n_nodes=12, cfg=cfg)
        client = grid.client("c")
        job = Job(profile=JobProfile(name="probed", client_id=client.node_id,
                                     requirements=(0.0, 0.0, 0.0), work=60.0))
        grid.submit_at(0.0, client, job)
        grid.run(until=10.0)
        assert job.state is JobState.RUNNING
        grid.crash_node(job.run_node_id)
        assert grid.run_until_done(max_time=5000)
        assert job.state is JobState.COMPLETED
        assert grid.metrics.recoveries["run-node"] >= 1
        # Confirmed by a has-job rpc, not an oracle peek.
        assert grid.rpc.stats.by_method.get("has-job", 0) >= 1


def recovery_cfg(**overrides):
    """rpc pipeline + heartbeats + tight recovery timers."""
    defaults = dict(dispatch_ack=True, heartbeats_enabled=True,
                    heartbeat_interval=2.0, heartbeat_miss_limit=2.0)
    defaults.update(overrides)
    return rpc_cfg(**defaults)


def submit_one(grid, work=60.0, name="df-job"):
    client = grid.client("c")
    job = Job(profile=JobProfile(name=name, client_id=client.node_id,
                                 requirements=(0.0, 0.0, 0.0), work=work))
    grid.submit_at(0.0, client, job)
    return client, job


class TestDoubleFailure:
    """§2's adversarial case: the owner *and* the run node go dark inside
    one probe round, so neither watchdog of the owner/runner pair can
    cover for the other."""

    def test_short_outage_recovers_from_stale_state(self):
        """Both partitioned, both heal before the client would give up:
        the healed owner's record and the healed runner's queue state are
        stale but self-consistent, and the protocol drains normally."""
        grid = make_small_grid("rn-tree", n_nodes=12, cfg=recovery_cfg())
        client, job = submit_one(grid, work=60.0)
        grid.run(until=8.0)
        assert job.state is JobState.RUNNING
        owner_id, run_id = job.owner_id, job.run_node_id
        assert owner_id != run_id
        # One probe round apart (0.25s << heartbeat_interval), per the
        # DoubleFailureInjector's schedule, then a short shared outage.
        grid.partition_node(owner_id)
        grid.sim.schedule(0.25, grid.partition_node, run_id)
        grid.sim.schedule(10.0, grid.heal_node, owner_id)
        grid.sim.schedule(10.25, grid.heal_node, run_id)
        assert grid.run_until_done(max_time=5000)
        assert job.state is JobState.COMPLETED
        done = [j.guid for j in grid.metrics.done]
        assert done.count(job.guid) == 1

    def test_long_outage_recovers_via_client_resubmission(self):
        """Both dark past the client timeout: only the client watchdog is
        left, and it must re-inject without double-accounting once the
        stale pair heals and its copy's result races the fresh one."""
        cfg = recovery_cfg(client_resubmit_enabled=True,
                           client_check_interval=5.0, client_timeout=20.0)
        grid = make_small_grid("rn-tree", n_nodes=12, cfg=cfg)
        client, job = submit_one(grid, work=60.0)
        grid.run(until=8.0)
        assert job.state is JobState.RUNNING
        owner_id, run_id = job.owner_id, job.run_node_id
        assert owner_id != run_id
        grid.partition_node(owner_id)
        grid.sim.schedule(0.25, grid.partition_node, run_id)
        grid.sim.schedule(90.0, grid.heal_node, owner_id)
        grid.sim.schedule(90.25, grid.heal_node, run_id)
        assert grid.run_until_done(max_time=5000)
        assert job.state is JobState.COMPLETED
        assert job.attempt >= 2          # the resubmission drove recovery
        assert grid.metrics.resubmissions >= 1
        # Exactly-once terminal accounting despite the duplicate copy.
        done = [j.guid for j in grid.metrics.done]
        assert done.count(job.guid) == 1
        # Let the healed pair's stale timers all fire; nothing may
        # un-complete the job.
        grid.run(until=grid.sim.now + 120.0)
        assert job.state is JobState.COMPLETED
        assert done.count(job.guid) == 1


class TestStaleOwnerHealRace:
    """Regression: a heal racing the heartbeat re-registration path let a
    stale owner's monitor sweep FAIL a job its replacement owner had
    already completed — the job was counted done twice (COMPLETED at the
    client, then FAILED by the zombie record)."""

    def test_healed_owner_discards_stale_record(self):
        grid = make_small_grid("rn-tree", n_nodes=12, cfg=recovery_cfg())
        client, job = submit_one(grid, work=30.0, name="stale-owner")
        grid.run(until=8.0)
        assert job.state is JobState.RUNNING
        owner_id = job.owner_id
        assert owner_id != job.run_node_id
        owner = grid.nodes[owner_id]
        # Deterministic schedule: partition the owner mid-run; the runner
        # recruits a replacement; the job completes under it; then the
        # old owner heals with its pre-outage record intact.
        grid.partition_node(owner_id)
        grid.sim.schedule(90.0, grid.heal_node, owner_id)
        assert grid.run_until_done(max_time=5000)
        assert job.state is JobState.COMPLETED
        assert job.owner_id != owner_id        # ownership moved
        assert grid.metrics.recoveries["owner"] >= 1
        # Past the heal plus several sweep periods: the stale record must
        # be discarded, not acted on.
        grid.run(until=200.0)
        assert job.state is JobState.COMPLETED, (
            "healed stale owner re-failed a completed job")
        assert job.guid not in owner.owned
        done = [j.guid for j in grid.metrics.done]
        assert done.count(job.guid) == 1
        assert grid.metrics.summary()["failed"] == 0.0

    def test_owner_fail_is_noop_on_terminal_job(self):
        """The terminal-transition guard itself: no path may flip a
        COMPLETED job to FAILED."""
        grid = make_small_grid(cfg=rpc_cfg())
        owner = grid.node_list[0]
        job = adopt_job(grid, owner)
        job.state = JobState.COMPLETED
        owner._owner_fail_job(job, "stale sweep")
        assert job.state is JobState.COMPLETED
        assert job.failure_reason is None
        assert job.guid not in owner.owned

    def test_owner_fail_is_noop_after_ownership_moved(self):
        grid = make_small_grid(cfg=rpc_cfg())
        old_owner, new_owner = grid.node_list[:2]
        job = adopt_job(grid, old_owner)
        job.owner_id = new_owner.node_id   # adoption moved the job
        old_owner._owner_fail_job(job, "stale sweep")
        assert job.state is not JobState.FAILED
        assert job.guid not in old_owner.owned


class TestOracleDeterminism:
    # Pre-pipeline reference values (mixed-heavy figure2 scenario at scale
    # 0.06, seed 1), captured before the refactor: the oracle pipeline
    # must reproduce the monolithic matchmakers bit-for-bit.
    GOLDEN = {
        "rn-tree": (76.67279548143944, 123.42356382890964,
                    16.926666666666666, 3.9466666666666668),
        "can": (52.286107279996855, 97.94099048173442,
                11.113333333333333, 8.713333333333333),
        "can-push": (31.340012950060547, 66.04078409865006,
                     11.879598662207357, 9.173913043478262),
        "centralized": (32.204981445840595, 68.98563308142036, 0.0, 0.0),
        "ttl-walk": (83.25811896114573, 121.93902743260028,
                     8.656666666666666, 0.0),
    }

    @pytest.mark.parametrize("matchmaker", sorted(GOLDEN))
    def test_oracle_mode_reproduces_prepipeline_numbers(self, matchmaker):
        scenario = FIGURE2_SCENARIOS["mixed-heavy"].scaled(0.06)
        out = run_workload(scenario, matchmaker, seed=1)
        s = out.summary
        wait_mean, wait_std, cost, probes = self.GOLDEN[matchmaker]
        assert s["wait_mean"] == wait_mean
        assert s["wait_std"] == wait_std
        assert s["match_cost_mean"] == cost
        assert s["probes_mean"] == probes
