"""Run-node/owner protocol: FIFO execution, heartbeats, failure recovery.

These are the §2 behaviours: jobs execute one at a time in FIFO order;
heartbeats cover every queued job; the owner re-matches when the run node
dies; the run node recruits a replacement owner when the owner dies; the
client resubmits only when both die.
"""

import pytest

from repro.grid.job import Job, JobProfile, JobState
from repro.grid.sandbox import SandboxPolicy
from repro.grid.system import GridConfig

from tests.conftest import make_small_grid


def submit_job(grid, client, name, work=10.0, req=(0.0, 0.0, 0.0), at=0.0,
               **extra):
    job = Job(profile=JobProfile(name=name, client_id=client.node_id,
                                 requirements=req, work=work))
    job.extra.update(extra)
    grid.submit_at(at, client, job)
    return job


class TestFIFOExecution:
    def test_jobs_complete(self):
        grid = make_small_grid()
        client = grid.client("c")
        jobs = [submit_job(grid, client, f"fifo-{i}", work=5.0, at=float(i))
                for i in range(5)]
        assert grid.run_until_done(max_time=1000)
        assert all(j.state is JobState.COMPLETED for j in jobs)

    def test_one_at_a_time_fifo_order(self):
        # Force every job onto one node: a 1-node grid.
        grid = make_small_grid(n_nodes=1)
        client = grid.client("c")
        jobs = [submit_job(grid, client, f"serial-{i}", work=10.0, at=0.0)
                for i in range(4)]
        assert grid.run_until_done(max_time=1000)
        starts = sorted(j.start_time for j in jobs)
        for a, b in zip(starts, starts[1:]):
            assert b - a >= 10.0 - 1e-6  # strictly serialized
        # FIFO: start order == enqueue order.
        by_enqueue = sorted(jobs, key=lambda j: j.enqueue_time)
        by_start = sorted(jobs, key=lambda j: j.start_time)
        assert [j.name for j in by_enqueue] == [j.name for j in by_start]

    def test_wait_time_measures_queueing(self):
        grid = make_small_grid(n_nodes=1)
        client = grid.client("c")
        first = submit_job(grid, client, "front", work=20.0, at=0.0)
        second = submit_job(grid, client, "behind", work=5.0, at=0.0)
        grid.run_until_done(max_time=1000)
        assert first.wait_time < 1.0  # just network + matchmaking latency
        assert second.wait_time == pytest.approx(20.0, abs=1.0)

    def test_queue_len_counts_running_and_queued(self):
        grid = make_small_grid(n_nodes=1)
        node = grid.node_list[0]
        client = grid.client("c")
        for i in range(3):
            submit_job(grid, client, f"qlen-{i}", work=100.0, at=0.0)
        grid.run(until=10.0)
        assert node.queue_len == 3
        assert node.running is not None
        assert len(node.queue) == 2

    def test_turnaround_includes_execution(self):
        grid = make_small_grid()
        client = grid.client("c")
        job = submit_job(grid, client, "solo", work=30.0)
        grid.run_until_done(max_time=1000)
        assert job.turnaround == pytest.approx(30.0, abs=1.0)

    def test_execution_time_scales_with_cpu(self):
        cfg = GridConfig(seed=7, scale_runtime_by_cpu=True,
                         reference_cpu_level=10.0,
                         sandbox=SandboxPolicy(max_runtime_factor=None))
        grid = make_small_grid(cfg=cfg)
        node = grid.node_list[0]
        job = Job(profile=JobProfile(name="scaled", client_id=1,
                                     requirements=(0.0, 0.0, 0.0), work=10.0))
        expected = 10.0 / (node.capability[0] / 10.0)
        assert node.execution_time(job) == pytest.approx(expected)


class TestHeartbeatProtocol:
    def make_hb_grid(self, **overrides):
        defaults = dict(seed=7, heartbeats_enabled=True,
                        heartbeat_interval=1.0, heartbeat_miss_limit=2.5)
        defaults.update(overrides)
        return make_small_grid("rn-tree", n_nodes=12, cfg=GridConfig(**defaults))

    def test_heartbeats_flow_while_running(self):
        grid = self.make_hb_grid()
        client = grid.client("c")
        submit_job(grid, client, "hb-job", work=30.0)
        grid.run(until=20.0)
        assert grid.network.stats.by_kind.get("heartbeat", 0) > 5
        assert grid.network.stats.by_kind.get("hb-ack", 0) > 5

    def test_no_heartbeats_when_disabled(self):
        grid = make_small_grid("rn-tree", n_nodes=12,
                               cfg=GridConfig(seed=7, heartbeats_enabled=False))
        client = grid.client("c")
        submit_job(grid, client, "quiet", work=30.0)
        grid.run_until_done(max_time=1000)
        assert grid.network.stats.by_kind.get("heartbeat", 0) == 0

    def test_run_node_crash_triggers_rematch(self):
        grid = self.make_hb_grid()
        client = grid.client("c")
        job = submit_job(grid, client, "survivor", work=60.0)
        grid.run(until=10.0)
        assert job.state is JobState.RUNNING
        grid.crash_node(job.run_node_id)
        assert grid.run_until_done(max_time=5000)
        assert job.state is JobState.COMPLETED
        assert job.run_node_failures >= 1
        assert job.executions >= 2  # restarted from scratch
        assert grid.metrics.recoveries["run-node"] >= 1
        assert job.attempt == 1  # no client resubmission needed

    def test_owner_crash_recruits_replacement(self):
        grid = self.make_hb_grid()
        client = grid.client("c")
        job = submit_job(grid, client, "orphan", work=60.0)
        grid.run(until=10.0)
        assert job.state is JobState.RUNNING
        original_owner = job.owner_id
        assert original_owner != job.run_node_id  # owner != runner here
        grid.crash_node(original_owner)
        assert grid.run_until_done(max_time=5000)
        assert job.state is JobState.COMPLETED
        assert job.owner_failures >= 1
        assert job.owner_id != original_owner
        assert grid.metrics.recoveries["owner"] >= 1
        assert job.attempt == 1

    def test_both_crash_forces_client_resubmission(self):
        grid = self.make_hb_grid(relay_status_to_client=True,
                                 client_resubmit_enabled=True,
                                 client_check_interval=5.0,
                                 client_timeout=20.0,
                                 client_max_attempts=5)
        client = grid.client("c")
        job = submit_job(grid, client, "doomed-once", work=60.0)
        grid.run(until=10.0)
        assert job.state is JobState.RUNNING
        owner_id, run_id = job.owner_id, job.run_node_id
        grid.crash_node(owner_id)
        if run_id != owner_id:
            grid.crash_node(run_id)
        assert grid.run_until_done(max_time=20000)
        assert job.state is JobState.COMPLETED
        assert job.attempt >= 2
        assert client.resubmissions >= 1


class TestSupersededAssignments:
    def test_stale_assignment_is_dropped(self):
        grid = make_small_grid(n_nodes=4)
        node = grid.node_list[0]
        other = grid.node_list[1]
        job = Job(profile=JobProfile(name="stale", client_id=1,
                                     requirements=(0.0, 0.0, 0.0), work=5.0))
        job.run_node_id = other.node_id  # owner re-matched elsewhere
        from repro.sim.network import Message

        node.handle_message(Message("assign", src=2, dst=node.node_id,
                                    payload=job))
        assert node.queue_len == 0


class TestSandboxIntegration:
    def test_network_needing_job_fails(self):
        grid = make_small_grid()
        client = grid.client("c")
        job = submit_job(grid, client, "rogue", work=5.0, needs_network=True)
        grid.run_until_done(max_time=1000)
        assert job.state is JobState.FAILED
        assert "network" in job.failure_reason

    def test_oversized_output_fails_at_completion(self):
        cfg = GridConfig(seed=7, sandbox=SandboxPolicy(output_quota_kb=1.0))
        grid = make_small_grid(cfg=cfg)
        client = grid.client("c")
        job = Job(profile=JobProfile(name="chatty", client_id=client.node_id,
                                     requirements=(0.0, 0.0, 0.0), work=5.0,
                                     output_size_kb=100.0))
        grid.submit_at(0.0, client, job)
        grid.run_until_done(max_time=1000)
        assert job.state is JobState.FAILED
        assert "output-quota" in job.failure_reason

    def test_runaway_killed_at_limit(self):
        # A slow node stretches execution past the runaway factor.
        cfg = GridConfig(seed=7, scale_runtime_by_cpu=True,
                         sandbox=SandboxPolicy(max_runtime_factor=2.0))
        grid = make_small_grid(cfg=cfg, n_nodes=1)
        node = grid.node_list[0]
        node.capability = (1.0,) + tuple(node.capability[1:])  # cpu level 1
        client = grid.client("c")
        job = submit_job(grid, client, "runaway", work=10.0)
        grid.run_until_done(max_time=1000)
        assert job.state is JobState.FAILED
        assert "runtime limit" in job.failure_reason


class TestFairShare:
    def test_fair_share_interleaves_clients(self):
        cfg = GridConfig(seed=7, queue_discipline="fair-share")
        grid = make_small_grid(cfg=cfg, n_nodes=1)
        heavy = grid.client("heavy")
        light = grid.client("light")
        heavy_jobs = [submit_job(grid, heavy, f"h-{i}", work=10.0, at=0.0)
                      for i in range(5)]
        light_job = submit_job(grid, light, "l-0", work=10.0, at=1.0)
        grid.run_until_done(max_time=1000)
        # The light client's job runs after at most one heavy job finishes
        # (plus the in-flight one), never behind the whole burst.
        finished_before_light = sum(
            1 for j in heavy_jobs if j.finish_time <= light_job.start_time + 1e-9)
        assert finished_before_light <= 2

    def test_fifo_starves_late_client(self):
        cfg = GridConfig(seed=7, queue_discipline="fifo")
        grid = make_small_grid(cfg=cfg, n_nodes=1)
        heavy = grid.client("heavy")
        light = grid.client("light")
        heavy_jobs = [submit_job(grid, heavy, f"h-{i}", work=10.0, at=0.0)
                      for i in range(5)]
        light_job = submit_job(grid, light, "l-0", work=10.0, at=1.0)
        grid.run_until_done(max_time=1000)
        finished_before_light = sum(
            1 for j in heavy_jobs if j.finish_time <= light_job.start_time + 1e-9)
        assert finished_before_light >= 4  # waits out the whole burst
