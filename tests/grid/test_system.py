"""DesktopGrid wiring: construction, membership, end-to-end integration."""

import pytest

from repro.grid.job import Job, JobProfile, JobState
from repro.grid.system import DesktopGrid, GridConfig
from repro.match import MATCHMAKERS, make_matchmaker

from tests.conftest import make_small_grid


class TestConstruction:
    def test_nodes_registered_on_network(self):
        grid = make_small_grid(n_nodes=8)
        assert len(grid.nodes) == 8
        for node in grid.node_list:
            assert grid.network.endpoint(node.node_id) is node

    def test_invalid_capability_rejected(self):
        with pytest.raises(ValueError):
            DesktopGrid(GridConfig(), make_matchmaker("centralized"),
                        [("bad", (0.0, 5.0, 5.0))])

    def test_invalid_queue_discipline_rejected(self):
        with pytest.raises(ValueError):
            GridConfig(queue_discipline="lifo")

    def test_matchmaker_bound(self):
        grid = make_small_grid()
        assert grid.matchmaker.grid is grid


class TestMembership:
    def test_crash_and_recover_roundtrip(self):
        grid = make_small_grid(n_nodes=8)
        node = grid.node_list[3]
        grid.crash_node(node.node_id)
        assert not node.alive
        assert node not in grid.live_nodes()
        grid.recover_node(node.node_id)
        assert node.alive
        assert node in grid.live_nodes()

    def test_crash_loses_queue(self):
        grid = make_small_grid(n_nodes=1)
        client = grid.client("c")
        for i in range(3):
            job = Job(profile=JobProfile(name=f"lost-{i}",
                                         client_id=client.node_id,
                                         requirements=(0.0, 0.0, 0.0),
                                         work=100.0))
            grid.submit_at(0.0, client, job)
        grid.run(until=5.0)
        node = grid.node_list[0]
        assert node.queue_len == 3
        grid.crash_node(node.node_id)
        assert node.queue_len == 0
        assert node.running is None

    def test_partition_preserves_state(self):
        grid = make_small_grid(n_nodes=2)
        node = grid.node_list[0]
        node.owned[123] = "sentinel"  # type: ignore[assignment]
        grid.partition_node(node.node_id)
        assert not node.alive
        assert node.owned[123] == "sentinel"
        grid.heal_node(node.node_id)
        assert node.alive

    def test_partition_vs_crash_semantics(self):
        # Same starting point, opposite volatile-state outcomes: a
        # partition keeps the queue and the running job's completion
        # timer; a crash wipes everything.
        def loaded_node():
            grid = make_small_grid(n_nodes=1)
            client = grid.client("c")
            for i in range(3):
                job = Job(profile=JobProfile(name=f"vol-{i}",
                                             client_id=client.node_id,
                                             requirements=(0.0, 0.0, 0.0),
                                             work=100.0))
                grid.submit_at(0.0, client, job)
            grid.run(until=5.0)
            return grid, grid.node_list[0]

        grid, node = loaded_node()
        grid.partition_node(node.node_id)
        assert not node.alive
        assert node.queue_len == 3          # queue survives
        assert node.running is not None     # execution continues
        assert node._completion is not None
        grid.heal_node(node.node_id)
        assert node.alive and node.queue_len == 3

        grid, node = loaded_node()
        grid.crash_node(node.node_id)
        assert not node.alive
        assert node.queue_len == 0          # volatile state lost
        assert node.running is None
        assert node._completion is None

    def test_partitioned_node_unreachable(self):
        grid = make_small_grid(n_nodes=2)
        node = grid.node_list[0]
        other = grid.node_list[1]
        grid.partition_node(node.node_id)
        job = Job(profile=JobProfile(name="undeliverable", client_id=1,
                                     requirements=(0.0, 0.0, 0.0), work=5.0))
        job.run_node_id = node.node_id
        grid.network.send("assign", other.node_id, node.node_id, job)
        grid.run(until=5.0)
        assert node.queue_len == 0  # the network dropped the message

    def test_crash_is_idempotent(self):
        grid = make_small_grid(n_nodes=4)
        nid = grid.node_list[0].node_id
        grid.crash_node(nid)
        grid.crash_node(nid)
        grid.recover_node(nid)
        grid.recover_node(nid)
        assert grid.nodes[nid].alive


class TestEndToEnd:
    @pytest.mark.parametrize("mm_name", sorted(MATCHMAKERS))
    def test_small_workload_completes_under_every_matchmaker(self, mm_name):
        grid = make_small_grid(mm_name, n_nodes=20)
        client = grid.client("c")
        jobs = []
        for i in range(30):
            job = Job(profile=JobProfile(name=f"e2e-{mm_name}-{i}",
                                         client_id=client.node_id,
                                         requirements=(0.0, 0.0, 0.0),
                                         work=5.0))
            grid.submit_at(float(i) * 0.5, client, job)
            jobs.append(job)
        assert grid.run_until_done(max_time=10000)
        assert all(j.state is JobState.COMPLETED for j in jobs)
        waits = grid.metrics.wait_times()
        assert len(waits) == 30
        assert (waits >= 0).all()

    def test_constrained_jobs_land_on_satisfying_nodes(self):
        from repro.grid.resources import satisfies

        grid = make_small_grid("rn-tree", n_nodes=24)
        client = grid.client("c")
        req = (7.0, 0.0, 4.0)
        jobs = []
        for i in range(20):
            job = Job(profile=JobProfile(name=f"picky-{i}",
                                         client_id=client.node_id,
                                         requirements=req, work=5.0))
            grid.submit_at(float(i), client, job)
            jobs.append(job)
        assert grid.run_until_done(max_time=10000)
        for job in jobs:
            assert job.state is JobState.COMPLETED
            run_node = grid.nodes[job.run_node_id]
            assert satisfies(run_node.capability, req)

    def test_determinism_same_seed_same_trace(self):
        def run_once():
            grid = make_small_grid("can", n_nodes=16, seed=11)
            client = grid.client("c")
            jobs = []
            for i in range(20):
                job = Job(profile=JobProfile(name=f"det-{i}",
                                             client_id=client.node_id,
                                             requirements=(0.0, 0.0, 0.0),
                                             work=10.0))
                grid.submit_at(float(i) * 0.3, client, job)
                jobs.append(job)
            grid.run_until_done(max_time=10000)
            return [(j.name, j.start_time, j.finish_time, j.run_node_id)
                    for j in jobs]

        assert run_once() == run_once()

    def test_node_execution_counts_sum_to_jobs(self):
        grid = make_small_grid(n_nodes=10)
        client = grid.client("c")
        for i in range(25):
            job = Job(profile=JobProfile(name=f"cnt-{i}",
                                         client_id=client.node_id,
                                         requirements=(0.0, 0.0, 0.0),
                                         work=2.0))
            grid.submit_at(0.0, client, job)
        grid.run_until_done(max_time=10000)
        assert sum(grid.node_execution_counts()) == 25
