"""Fault plans and injectors: grouping, strikes, determinism."""

import numpy as np
import pytest

from repro.grid.job import Job, JobProfile, JobState
from repro.grid.system import GridConfig
from repro.scenarios.faults import (
    DoubleFailureInjector,
    DoubleFailurePlan,
    PartitionStormPlan,
    RackFailurePlan,
    node_groups,
)
from repro.sim.failure import GroupFailureInjector
from repro.sim.kernel import Simulator

from tests.conftest import make_small_grid


class TestNodeGroups:
    def test_partitions_all_nodes_once(self):
        grid = make_small_grid(n_nodes=16)
        groups = node_groups(grid, 4)
        assert len(groups) == 4
        flat = [nid for g in groups for nid in g]
        assert sorted(flat) == sorted(n.node_id for n in grid.node_list)

    def test_remainder_folds_into_last_group(self):
        grid = make_small_grid(n_nodes=10)
        groups = node_groups(grid, 3)
        assert len(groups) == 3
        assert sum(len(g) for g in groups) == 10
        assert len(groups[-1]) >= len(groups[0])

    def test_more_groups_than_nodes(self):
        grid = make_small_grid(n_nodes=3)
        groups = node_groups(grid, 8)
        assert len(groups) == 3
        assert all(len(g) == 1 for g in groups)

    def test_validation(self):
        grid = make_small_grid(n_nodes=4)
        with pytest.raises(ValueError):
            node_groups(grid, 0)


class TestGroupFailureInjector:
    def test_strikes_take_down_whole_group(self):
        sim = Simulator()
        downs, ups = [], []
        inj = GroupFailureInjector(
            sim, np.random.default_rng(3), [[1, 2, 3], [4, 5, 6]],
            take_down_fn=downs.append, bring_up_fn=ups.append,
            mean_interval=10.0, outage=5.0, max_strikes=1)
        sim.run(until=200.0)
        assert inj.strikes == 1
        assert inj.members_taken_down == 3
        # The struck group went down and came back, as a unit.
        assert sorted(downs) in ([1, 2, 3], [4, 5, 6])
        assert sorted(ups) == sorted(downs)

    def test_deterministic_replay(self):
        def run():
            sim = Simulator()
            events = []
            GroupFailureInjector(
                sim, np.random.default_rng(7), [[1, 2], [3, 4]],
                take_down_fn=lambda n: events.append(("down", n, sim.now)),
                bring_up_fn=lambda n: events.append(("up", n, sim.now)),
                mean_interval=20.0, outage=8.0, max_strikes=3)
            sim.run(until=500.0)
            return events

        assert run() == run()

    def test_stop_halts_new_strikes(self):
        sim = Simulator()
        downs = []
        inj = GroupFailureInjector(
            sim, np.random.default_rng(3), [[1, 2]],
            take_down_fn=downs.append, bring_up_fn=lambda n: None,
            mean_interval=10.0, outage=5.0)
        inj.stop()
        sim.run(until=500.0)
        assert downs == []
        assert inj.strikes == 0

    def test_validation(self):
        sim = Simulator()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            GroupFailureInjector(sim, rng, [], lambda n: None,
                                 lambda n: None, 10.0, 5.0)
        with pytest.raises(ValueError):
            GroupFailureInjector(sim, rng, [[1], []], lambda n: None,
                                 lambda n: None, 10.0, 5.0)
        with pytest.raises(ValueError):
            GroupFailureInjector(sim, rng, [[1]], lambda n: None,
                                 lambda n: None, -1.0, 5.0)


class TestPlans:
    def test_rack_plan_crashes_state(self):
        grid = make_small_grid(cfg=GridConfig(seed=7,
                                              heartbeats_enabled=True))
        inj = RackFailurePlan(n_groups=4, mean_interval=5.0, outage=3.0,
                              max_strikes=2).install(grid)
        grid.run(until=100.0)
        assert inj.strikes == 2
        assert inj.members_taken_down > 0
        # Everyone recovered by now.
        assert all(n.alive for n in grid.node_list)

    def test_partition_plan_uses_partition_not_crash(self):
        grid = make_small_grid(cfg=GridConfig(seed=7,
                                              heartbeats_enabled=True))
        inj = PartitionStormPlan(n_groups=4, mean_interval=5.0,
                                 outage=1e6).install(grid)
        grid.run(until=60.0)
        assert inj.members_taken_down > 0
        parted = [n for n in grid.node_list if not n.alive]
        assert parted
        # Partition keeps volatile state; crash would have cleared it —
        # distinguishable because partitioned nodes stay registered
        # with their queues intact (no state reset happened).
        assert all(n.queue is not None for n in parted)


class TestDoubleFailureInjector:
    def _grid_with_inflight_job(self):
        grid = make_small_grid(cfg=GridConfig(seed=7,
                                              heartbeats_enabled=True))
        owner, runner = grid.node_list[0], grid.node_list[1]
        client = grid.client("c")
        job = Job(profile=JobProfile(name="dbl", client_id=client.node_id,
                                     requirements=(0.0, 0.0, 0.0),
                                     work=1e6))
        job.state = JobState.RUNNING
        job.owner_id = owner.node_id
        job.run_node_id = runner.node_id
        grid.jobs[job.guid] = job
        return grid, job, owner, runner

    def test_candidates_require_live_distinct_pair(self):
        grid, job, owner, runner = self._grid_with_inflight_job()
        inj = DoubleFailureInjector(grid, np.random.default_rng(1),
                                    mean_interval=10.0, outage=5.0,
                                    start=False)
        assert inj._candidates() == [(owner.node_id, runner.node_id)]
        owner.crash()
        assert inj._candidates() == []

    def test_strike_partitions_both_within_spread(self):
        grid, job, owner, runner = self._grid_with_inflight_job()
        inj = DoubleFailureInjector(grid, np.random.default_rng(1),
                                    mean_interval=1.0, outage=30.0,
                                    spread=0.25, max_strikes=1)
        # Run past the first strike but inside the outage window.
        grid.sim.run(until=20.0)
        assert inj.strikes == 1
        assert inj.pairs_hit == 1
        assert not owner.alive and not runner.alive
        grid.sim.run(until=60.0)
        assert owner.alive and runner.alive

    def test_no_candidates_still_reschedules(self):
        grid = make_small_grid()
        inj = DoubleFailureInjector(grid, np.random.default_rng(1),
                                    mean_interval=5.0, outage=2.0,
                                    max_strikes=3)
        grid.sim.run(until=200.0)
        assert inj.strikes == 3
        assert inj.pairs_hit == 0

    def test_validation(self):
        grid = make_small_grid()
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            DoubleFailureInjector(grid, rng, mean_interval=0.0, outage=5.0)
        with pytest.raises(ValueError):
            DoubleFailureInjector(grid, rng, mean_interval=5.0, outage=5.0,
                                  spread=-1.0)

    def test_plan_installs_on_faults_stream(self):
        grid, *_ = self._grid_with_inflight_job()
        inj = DoubleFailurePlan(mean_interval=50.0,
                                outage=10.0).install(grid)
        assert inj.grid is grid
        assert inj.rng is grid.streams["faults"]
