"""Workload shapes: determinism, load conservation, validation."""

import math

import numpy as np
import pytest

from repro.scenarios.shapes import (
    diurnal,
    flash_crowd,
    lognormal_runtimes,
    pareto_runtimes,
)
from repro.workloads.jobs import ScheduledJob


def make_stream(n=200, gap=5.0, work=60.0):
    return [ScheduledJob(submit_time=(i + 1) * gap, client_index=0,
                         requirements=(0.0, 0.0, 0.0), work=work,
                         name=f"job-{i:03d}")
            for i in range(n)]


def rng(seed=9):
    return np.random.default_rng(seed)


class TestFlashCrowd:
    def test_deterministic_per_rng_seed(self):
        a = flash_crowd(make_stream(), rng())
        b = flash_crowd(make_stream(), rng())
        assert [s.submit_time for s in a] == [s.submit_time for s in b]

    def test_same_jobs_different_times(self):
        base = make_stream()
        shaped = flash_crowd(base, rng())
        assert [s.name for s in shaped] == [s.name for s in base]
        assert [s.work for s in shaped] == [s.work for s in base]
        assert [s.submit_time for s in shaped] != \
            [s.submit_time for s in base]

    def test_total_span_roughly_preserved(self):
        base = make_stream()
        shaped = flash_crowd(base, rng())
        assert shaped[-1].submit_time == \
            pytest.approx(base[-1].submit_time, rel=0.05)

    def test_bursts_compress_gaps(self):
        shaped = flash_crowd(make_stream(), rng(), burst_factor=25.0)
        times = np.array([s.submit_time for s in shaped])
        gaps = np.diff(times)
        # Burst windows show the 25x compression; calm stretches exceed
        # the base gap.
        assert gaps.min() == pytest.approx(5.0 / 25.0, rel=0.01)
        assert gaps.max() > 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            flash_crowd(make_stream(), rng(), burst_factor=1.0)
        with pytest.raises(ValueError):
            flash_crowd(make_stream(), rng(), n_bursts=5, burst_frac=0.25)

    def test_empty_stream(self):
        assert flash_crowd([], rng()) == []


class TestDiurnal:
    def test_deterministic_and_rng_free(self):
        # Different rng seeds, identical output: the transform draws
        # nothing.
        a = diurnal(make_stream(), rng(1))
        b = diurnal(make_stream(), rng(2))
        assert [s.submit_time for s in a] == [s.submit_time for s in b]

    def test_modulates_rate_both_ways(self):
        shaped = diurnal(make_stream(), rng(), period=600.0, amplitude=0.8)
        gaps = np.diff([0.0] + [s.submit_time for s in shaped])
        assert gaps.min() < 5.0 < gaps.max()

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal(make_stream(), rng(), amplitude=1.0)
        with pytest.raises(ValueError):
            diurnal(make_stream(), rng(), period=0.0)


class TestHeavyTails:
    @pytest.mark.parametrize("shape", [pareto_runtimes, lognormal_runtimes])
    def test_mean_matched(self, shape):
        base = make_stream(n=4000, work=60.0)
        shaped = shape(base, rng())
        works = np.array([s.work for s in shaped])
        # Offered load is comparable: the empirical mean lands near the
        # base mean (heavy tails converge slowly; the bound is loose).
        assert 0.5 * 60.0 < works.mean() < 2.0 * 60.0
        # But the tail is genuinely heavy.
        assert works.max() / np.median(works) > 10.0

    @pytest.mark.parametrize("shape", [pareto_runtimes, lognormal_runtimes])
    def test_arrivals_untouched(self, shape):
        base = make_stream()
        shaped = shape(base, rng())
        assert [s.submit_time for s in shaped] == \
            [s.submit_time for s in base]

    def test_min_work_floor(self):
        shaped = pareto_runtimes(make_stream(n=500), rng(), min_work=1.0)
        assert min(s.work for s in shaped) >= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            pareto_runtimes(make_stream(), rng(), alpha=1.0)
        with pytest.raises(ValueError):
            lognormal_runtimes(make_stream(), rng(), sigma=0.0)

    def test_lognormal_mu_solved_from_mean(self):
        # exp(mu + sigma^2/2) == mean_work by construction.
        sigma, mean_work = 1.8, 60.0
        mu = math.log(mean_work) - 0.5 * sigma * sigma
        assert math.exp(mu + 0.5 * sigma * sigma) == pytest.approx(mean_work)
