"""The scenario catalog: registration, composition, determinism."""

import pytest

from repro.experiments.runner import build_population
from repro.scenarios import (
    RECOVERY_OVERRIDES,
    SCENARIOS,
    Scenario,
    get_scenario,
    scenario_names,
)
from repro.workloads.spec import WorkloadConfig

EXPECTED = {"baseline", "flash_crowd", "diurnal", "heavy_tail_pareto",
            "heavy_tail_lognormal", "correlated_failure", "partition_storm",
            "double_failure"}

FAULT_SCENARIOS = {"correlated_failure", "partition_storm", "double_failure"}


def _stream(seed=3):
    wl = WorkloadConfig(n_nodes=16, n_jobs=40, node_mode="mixed")
    _nodes, stream = build_population(wl, seed)
    return stream


class TestCatalog:
    def test_expected_scenarios_registered(self):
        assert EXPECTED <= set(scenario_names())

    def test_get_scenario_unknown_name(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("no-such-regime")

    def test_fault_scenarios_enable_recovery(self):
        for name in FAULT_SCENARIOS:
            s = get_scenario(name)
            assert s.fault_plan is not None
            for key, value in RECOVERY_OVERRIDES.items():
                assert s.grid_overrides[key] == value, (name, key)

    def test_benign_scenarios_have_no_overrides(self):
        for name in EXPECTED - FAULT_SCENARIOS:
            assert not get_scenario(name).grid_overrides, name

    def test_every_scenario_has_description(self):
        for s in SCENARIOS.values():
            assert s.description


class TestShapedStream:
    def test_identity_when_no_shape(self):
        stream = _stream()
        assert get_scenario("baseline").shaped_stream(stream, 3) is stream
        assert get_scenario("correlated_failure").shaped_stream(
            stream, 3) is stream

    def test_deterministic_per_seed(self):
        s = get_scenario("flash_crowd")
        a = s.shaped_stream(_stream(), 3)
        b = s.shaped_stream(_stream(), 3)
        assert [(sj.submit_time, sj.work) for sj in a] == \
            [(sj.submit_time, sj.work) for sj in b]

    def test_seed_changes_shape(self):
        s = get_scenario("flash_crowd")
        a = s.shaped_stream(_stream(), 3)
        b = s.shaped_stream(_stream(), 4)
        assert [sj.submit_time for sj in a] != [sj.submit_time for sj in b]

    def test_shape_rng_is_isolated_from_workload(self):
        # Shaping one scenario must not perturb the base stream another
        # cell generates from the same seed: build_population is called
        # fresh per cell and the shape draws from its own stream.
        base_before = [sj.submit_time for sj in _stream()]
        get_scenario("flash_crowd").shaped_stream(_stream(), 3)
        base_after = [sj.submit_time for sj in _stream()]
        assert base_before == base_after


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        from repro.scenarios.catalog import _register
        with pytest.raises(ValueError, match="duplicate"):
            _register(Scenario("baseline", "dupe"))
